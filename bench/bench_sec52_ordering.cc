/**
 * @file
 * Quantifies paper Section 5.2: why the parallelism dimensions are
 * ordered [TP, CP, PP, DP] from the innermost (NVLink) level outward.
 *
 * For each axis we price its per-layer/per-step communication twice: once
 * with the paper's placement and once with that axis demoted to a
 * cross-node or cross-pod span. TP suffers catastrophically when moved
 * off NVLink (exposed, 4 collectives per layer per direction); DP barely
 * cares (once per step, overlappable) — exactly the paper's argument.
 */

#include "bench_util.h"

#include "llm4d/model/layer_cost.h"
#include "llm4d/net/collective.h"

using namespace llm4d;

namespace {

std::vector<std::int64_t>
strided(std::int64_t count, std::int64_t stride)
{
    std::vector<std::int64_t> ranks;
    for (std::int64_t i = 0; i < count; ++i)
        ranks.push_back(i * stride);
    return ranks;
}

} // namespace

int
main()
{
    bench::banner("Section 5.2 — placement order of parallelism dims",
                  "TP must be innermost (NVLink); DP tolerates the spine");

    const ClusterSpec spec = ClusterSpec::llama3Production(16384);
    const Topology topo(spec);
    const CollectiveModel coll(topo);
    const ModelConfig model = ModelConfig::llama3_405b();
    const LayerCostModel lcm(BlockDims::fromText(model),
                             spec.node.gpu, 8);
    const std::int64_t tokens = 8192;

    // Per-step communication seconds per axis under each placement.
    TextTable table("Per-axis communication vs placement (405B, seq 8K)");
    table.header({"axis", "events/step", "bytes/event",
                  "innermost (paper)", "cross-node", "cross-pod",
                  "penalty"});

    // TP: 8 collectives per layer (fwd+bwd), 126 layers, 16 micro-batches.
    {
        const std::int64_t shard = lcm.tpCollectiveShardBytes(tokens);
        const double events = 8.0 * 126.0 * 16.0;
        const double nv = coll.allGather(strided(8, 1), shard);
        const double node = coll.allGather(strided(8, 8), shard);
        const double pod = coll.allGather(strided(8, 2048), shard);
        table.row({"TP", TextTable::num(events, 0), TextTable::num(shard),
                   TextTable::num(nv * events, 2) + " s",
                   TextTable::num(node * events, 2) + " s",
                   TextTable::num(pod * events, 2) + " s",
                   TextTable::num(node / nv, 1) + "x"});
    }
    // CP (long context): 2 collectives per layer per micro-batch.
    {
        const std::int64_t kv_shard = (131072 / 16) * 512;
        const double events = 2.0 * 8.0 * 16.0; // layers/rank x mbs
        const double nv = coll.allGather(strided(16, 1), kv_shard);
        const double node = coll.allGather(strided(16, 8), kv_shard);
        const double pod = coll.allGather(strided(16, 1024), kv_shard);
        table.row({"CP", TextTable::num(events, 0),
                   TextTable::num(kv_shard),
                   TextTable::num(nv * events, 2) + " s",
                   TextTable::num(node * events, 2) + " s",
                   TextTable::num(pod * events, 2) + " s",
                   TextTable::num(pod / node, 1) + "x"});
    }
    // PP: P2P per stage boundary per micro-batch (256 hops/step).
    {
        const std::int64_t bytes = 2 * tokens * model.hidden / 8;
        const double events = 2.0 * 8.0 * 16.0;
        const double nv = coll.p2p(0, 1, bytes);
        const double node = coll.p2p(0, 8, bytes);
        const double pod = coll.p2p(0, 3072 * 2, bytes);
        table.row({"PP", TextTable::num(events, 0), TextTable::num(bytes),
                   TextTable::num(nv * events, 2) + " s",
                   TextTable::num(node * events, 2) + " s",
                   TextTable::num(pod * events, 2) + " s",
                   TextTable::num(pod / node, 1) + "x"});
    }
    // DP: one parameter all-gather + one gradient reduce-scatter per step.
    {
        const std::int64_t param_bytes = static_cast<std::int64_t>(
            2.0 * 8.0 * model.paramsPerLayer() / 8.0);
        const std::int64_t shard = param_bytes / 128;
        const double nv = coll.allGather(strided(128, 1), shard) * 3.0;
        const double node = coll.allGather(strided(128, 8), shard) * 3.0;
        const double pod =
            coll.allGather(strided(128, 128), shard) * 3.0;
        table.row({"DP", "2", TextTable::num(shard),
                   TextTable::num(nv, 2) + " s",
                   TextTable::num(node, 2) + " s",
                   TextTable::num(pod, 2) + " s",
                   TextTable::num(pod / node, 1) + "x  (overlappable)"});
    }
    table.print();

    std::printf(
        "Reading: TP's per-step volume is enormous and fully exposed — it "
        "must own NVLink.\nCP and PP follow; DP communicates once per "
        "step and hides behind compute, so it\nabsorbs the "
        "oversubscribed spine. Hence [TP, CP, PP, DP], inner to outer.\n");
    return 0;
}
