/**
 * @file
 * Reproduces the Section 3.2.1 multimodal case study numbers: with the
 * upgraded 672px encoder, Option 2 (serial encoder on the first PP rank)
 * spends ~33% of the step in the encoder; switching to Option 3
 * (replicated across PP ranks) cuts that to ~8% and recovers TFLOPs.
 */

#include "bench_util.h"

#include "llm4d/sim/multimodal.h"

using namespace llm4d;

namespace {

MultimodalReport
run(EncoderSharding sharding, const VitConfig &vit)
{
    MultimodalJobConfig cfg;
    cfg.mm.vit = vit;
    cfg.encoder = sharding;
    return simulateMultimodalStep(cfg);
}

} // namespace

int
main()
{
    bench::banner("Section 3.2 — multimodal encoder sharding options",
                  "672px encoder: Option 2 share ~33% -> Option 3 ~8%");

    TextTable table("Encoder sharding (reproduced)");
    table.header({"option", "encoder", "step ms", "encoder ms",
                  "comm ms", "share", "vs option3"});
    const MultimodalReport o3_672 =
        run(EncoderSharding::ReplicatedPerRank, VitConfig::vit672());
    const struct
    {
        const char *label;
        EncoderSharding sharding;
        VitConfig vit;
    } cases[] = {
        {"option2, 448px", EncoderSharding::SerialFirstRank,
         VitConfig::vit448()},
        {"option2, 672px", EncoderSharding::SerialFirstRank,
         VitConfig::vit672()},
        {"option1, 672px", EncoderSharding::FoldedIntoPipeline,
         VitConfig::vit672()},
        {"option3, 672px", EncoderSharding::ReplicatedPerRank,
         VitConfig::vit672()},
    };
    for (const auto &c : cases) {
        const MultimodalReport rep = run(c.sharding, c.vit);
        table.row({c.label, c.vit.name,
                   TextTable::num(rep.step_seconds * 1e3, 1),
                   TextTable::num(rep.encoder_seconds * 1e3, 1),
                   TextTable::num(rep.comm_seconds * 1e3, 1),
                   TextTable::pct(rep.encoderShare()),
                   TextTable::num(rep.step_seconds / o3_672.step_seconds,
                                  2) +
                       "x"});
    }
    table.print();

    const MultimodalReport o2_672 =
        run(EncoderSharding::SerialFirstRank, VitConfig::vit672());
    bench::compare("Option 2 encoder share at 672px (%)", 33.0,
                   o2_672.encoderShare() * 100.0);
    bench::compare("Option 3 encoder share at 672px (%)", 8.0,
                   o3_672.encoderShare() * 100.0);
    bench::compare("share reduction factor", 33.0 / 8.0,
                   o2_672.encoderShare() / o3_672.encoderShare());
    return 0;
}
