/**
 * @file
 * Goodput under production failure rates (paper Section 8; Llama 3 tech
 * report Section 3.3.4: 419 unexpected interruptions over 54 days on
 * 16,384 GPUs, yet >90% effective training time thanks to automated
 * recovery).
 *
 * Reproduces the operations story end-to-end through the fault subsystem:
 * the simulated 16K run must keep >=90% effective training time at the
 * calibrated MTBF, its interruption cadence must land near one every
 * three hours, and the Young-Daly checkpoint interval must sit at the
 * goodput maximum of an interval scan.
 */

#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "llm4d/fault/colocation_model.h"
#include "llm4d/fault/fault_model.h"
#include "llm4d/sim/train_run_sim.h"

using namespace llm4d;

namespace {

/** Bursty pod-heat tuning for the correlation study. The half-life is
 *  chosen subcritical: each onset spawns on average
 *  gain * heat * pod_rate * half_life/ln2 ~ 0.7 follow-ups at the 4000 h
 *  per-GPU straggler MTBF used below, so a seeding flares into a short
 *  same-pod burst of concurrent, worse-severity stragglers and dies out
 *  instead of running away into a permanent storm; the heat cap keeps
 *  even a stacked burst's gap (1/(pod_rate * 31) ~ 150 s) above the
 *  half-life so storms cannot self-sustain. */
ColocationTuning
burstyColocation()
{
    ColocationTuning t;
    t.enabled = true;
    t.heat_per_onset = 2.0;
    t.max_heat = 3.0;
    t.hazard_gain = 10.0;
    t.severity_gain = 2.0;
    t.heat_half_life_s = 120.0;
    return t;
}

/** One arm of the correlation A/B: a straggler-dominated run (rare
 *  fatals keep Young-Daly defined, flaps off) with raised step jitter
 *  so detection takes long enough for bursts to overlap. */
TrainRunConfig
correlationArm(std::int64_t gpus, const ParallelismConfig &par,
               std::int64_t batch_tokens, std::int64_t steps,
               std::uint64_t seed)
{
    TrainRunConfig cfg;
    cfg.job.cluster = ClusterSpec::llama3Production(gpus);
    cfg.job.par = par;
    cfg.job.global_batch_tokens = batch_tokens;
    cfg.job.cluster.node.gpu.fatal_mtbf_hours = 6000.0;
    cfg.job.cluster.node.host_mtbf_hours = 0.0;
    cfg.job.cluster.node.nic_flap_mtbf_hours = 0.0;
    cfg.job.cluster.node.gpu.straggler_mtbf_hours = 4000.0;
    cfg.detection.straggler.jitter_sigma = 0.5;
    cfg.total_steps = steps;
    cfg.checkpoint_interval_steps = 40;
    cfg.seed = seed;
    return cfg;
}

/** CRN sweep at one scale point: per seed, the independent and the
 *  pod-correlated arm share every random stream except the heat model's
 *  own, so the goodput delta isolates the correlation. Returns the sum
 *  of corr/indep goodput ratios and bumps @p swept per seed. */
double
correlationSweep(std::int64_t gpus, const ParallelismConfig &par,
                 std::int64_t batch_tokens, std::int64_t steps,
                 std::uint64_t seed_lo, std::uint64_t seed_hi,
                 TextTable &table, int &swept)
{
    double ratio_sum = 0.0;
    for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
        const TrainRunConfig icfg =
            correlationArm(gpus, par, batch_tokens, steps, seed);
        TrainRunConfig ccfg = icfg;
        ccfg.faults.colocation = burstyColocation();
        const TrainRunReport indep = TrainRunSim(icfg).run();
        const TrainRunReport corr = TrainRunSim(ccfg).run();
        // Pod occupancy of the correlated arm's onsets: the busiest
        // pod's share of all onsets shows the clustering directly.
        const std::int64_t gpus_per_pod =
            icfg.job.cluster.node.gpus_per_node *
            icfg.job.cluster.nodes_per_pod;
        std::map<std::int64_t, int> per_pod;
        int corr_onsets = 0;
        for (const FaultEvent &ev : corr.timeline)
            if (ev.kind == FaultKind::StragglerOnset) {
                ++per_pod[ev.component / gpus_per_pod];
                ++corr_onsets;
            }
        int busiest = 0;
        for (const auto &[pod, n] : per_pod)
            busiest = std::max(busiest, n);
        const double ratio = corr.goodput_tflops_per_gpu /
                             indep.goodput_tflops_per_gpu;
        ratio_sum += ratio;
        ++swept;
        table.row({TextTable::num(gpus),
                   TextTable::num(static_cast<std::int64_t>(seed)),
                   TextTable::num(indep.faults.stragglers),
                   TextTable::num(static_cast<std::int64_t>(corr_onsets)),
                   corr_onsets > 0
                       ? TextTable::pct(static_cast<double>(busiest) /
                                        corr_onsets)
                       : std::string("-"),
                   TextTable::num(indep.goodput_tflops_per_gpu, 1),
                   TextTable::num(corr.goodput_tflops_per_gpu, 1),
                   TextTable::pct(ratio - 1.0)});
    }
    return ratio_sum;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke")
            smoke = true;
    }

    bench::banner("Section 8 / Llama 3 3.3.4 — goodput under failures",
                  ">90% effective training time at a ~3h cluster MTBF; "
                  "checkpoint interval near Young-Daly optimum");

    if (smoke) {
        // CI-sized pass: the correlated-straggler CRN comparison at the
        // 8K point only, two seeds, short horizon — enough to exercise
        // the pod-heat path end to end through TrainRunSim.
        TextTable sm("Smoke: correlated vs independent stragglers "
                     "(8K GPUs, CRN)");
        sm.header({"GPUs", "seed", "onsets indep", "onsets corr",
                   "busiest pod", "goodput/GPU indep", "goodput/GPU corr",
                   "delta"});
        int swept = 0;
        correlationSweep(8192, ParallelismConfig{8, 1, 16, 64},
                         8LL * 1024 * 1024, 400, 1, 2, sm, swept);
        sm.print();
        std::puts("smoke: ok");
        return 0;
    }

    TrainRunConfig cfg; // 405B, 16,384 H100s, Table-2 parallelism
    cfg.total_steps = 20000; // ~1.5 simulated days
    cfg.seed = 54;
    const TrainRunSim sim(cfg);
    cfg.checkpoint_interval_steps = sim.youngDalyIntervalSteps();
    const TrainRunSim tuned(cfg);
    const TrainRunReport rep = tuned.run();

    // Llama 3: 419 interruptions / (54 d * 24 h) = 0.32 events/hour.
    const double interruptions_per_hour =
        static_cast<double>(rep.faults.total()) /
        (rep.wall_seconds / 3600.0);
    bench::compare("interruptions per hour (16K GPUs)", 419.0 / (54 * 24),
                   interruptions_per_hour);
    bench::compare("effective training time", 0.90,
                   rep.goodputFraction());
    bench::compare("goodput TFLOPs/GPU vs fault-free base",
                   rep.base_tflops_per_gpu, rep.goodput_tflops_per_gpu);

    TextTable table("Run at the Young-Daly checkpoint interval");
    table.header({"metric", "value"});
    table.row({"checkpoint interval",
               TextTable::num(cfg.checkpoint_interval_steps) + " steps (" +
                   TextTable::num(cfg.checkpoint_interval_steps *
                                      tuned.baseStep().step_seconds / 60.0,
                                  1) +
                   " min)"});
    table.row({"fatal interruptions",
               TextTable::num(rep.faults.gpu_fatal + rep.faults.host_crash)});
    table.row({"stragglers / link flaps",
               TextTable::num(rep.faults.stragglers) + " / " +
                   TextTable::num(rep.faults.link_flaps)});
    table.row({"steps lost to rollback", TextTable::num(rep.steps_lost)});
    table.row({"availability", TextTable::pct(rep.availability)});
    table.print();

    // Interval scan: the empirical optimum should bracket Young-Daly.
    const std::int64_t yd = cfg.checkpoint_interval_steps;
    const std::vector<std::int64_t> intervals = {yd / 4, yd / 2, yd, 2 * yd,
                                                 4 * yd};
    const auto points = tuned.scanCheckpointIntervals(intervals);
    TextTable scan("Goodput vs checkpoint interval (common fault timeline)");
    scan.header({"interval (steps)", "goodput TFLOPs/GPU"});
    for (const auto &pt : points)
        scan.row({TextTable::num(pt.interval_steps),
                  TextTable::num(pt.goodput_tflops_per_gpu, 1)});
    scan.print();
    const auto best = std::max_element(
        points.begin(), points.end(),
        [](const IntervalScanPoint &a, const IntervalScanPoint &b) {
            return a.goodput_tflops_per_gpu < b.goodput_tflops_per_gpu;
        });
    bench::compare("optimal interval / Young-Daly", 1.0,
                   static_cast<double>(best->interval_steps) /
                       static_cast<double>(yd));

    // --- Young-Daly re-scan under async checkpointing: only the DRAM ---
    // snapshot blocks the step, so the optimum contracts to the much
    // shorter sqrt(2 * MTBF * snapshot) and the run checkpoints far more
    // often for the same blocking overhead.
    TrainRunConfig async_cfg = cfg;
    async_cfg.policy.checkpoint_mode = CheckpointMode::Async;
    const std::int64_t yd_async =
        TrainRunSim(async_cfg).youngDalyIntervalSteps();
    async_cfg.checkpoint_interval_steps = yd_async;
    const TrainRunSim async_sim(async_cfg);
    const std::vector<std::int64_t> async_intervals = {
        std::max<std::int64_t>(1, yd_async / 4),
        std::max<std::int64_t>(1, yd_async / 2), yd_async, 2 * yd_async,
        4 * yd_async, yd};
    const auto async_points =
        async_sim.scanCheckpointIntervals(async_intervals);
    TextTable ascan("Goodput vs interval, async checkpoints "
                    "(snapshot blocks, drain overlaps)");
    ascan.header({"interval (steps)", "goodput TFLOPs/GPU", "note"});
    for (const auto &pt : async_points)
        ascan.row({TextTable::num(pt.interval_steps),
                   TextTable::num(pt.goodput_tflops_per_gpu, 1),
                   pt.interval_steps == yd_async
                       ? "<- async Young-Daly (snapshot cost)"
                       : (pt.interval_steps == yd ? "<- sync Young-Daly"
                                                  : "")});
    ascan.print();
    bench::compare("async / sync Young-Daly interval",
                   std::sqrt(tuned.checkpoint().snapshotSeconds() /
                             tuned.checkpoint().saveSeconds()),
                   static_cast<double>(yd_async) /
                       static_cast<double>(yd));
    const auto async_best = std::max_element(
        async_points.begin(), async_points.end(),
        [](const IntervalScanPoint &a, const IntervalScanPoint &b) {
            return a.goodput_tflops_per_gpu < b.goodput_tflops_per_gpu;
        });
    bench::compare("async optimal interval / async Young-Daly", 1.0,
                   static_cast<double>(async_best->interval_steps) /
                       static_cast<double>(yd_async));

    // --- Recovery-policy study across scales (common seed per scale: ---
    // the fault timeline is exogenous, so the comparison isolates the
    // policy). Full stop-the-world restarts vs warm-spare swaps vs the
    // full elastic stack (spares + DP-shrink + async + rebalancing).
    struct ScalePoint
    {
        std::int64_t gpus;
        ParallelismConfig par;
        std::int64_t batch_tokens;
        std::int64_t spares;
    };
    const ScalePoint scales[] = {
        {2048, ParallelismConfig{8, 1, 16, 16}, 2LL * 1024 * 1024, 2},
        {4096, ParallelismConfig{8, 1, 16, 32}, 4LL * 1024 * 1024, 4},
        {8192, ParallelismConfig{8, 1, 16, 64}, 8LL * 1024 * 1024, 8},
        {16384, ParallelismConfig{8, 1, 16, 128}, 16LL * 1024 * 1024, 16},
    };
    struct PolicyColumn
    {
        const char *name;
        RecoveryPolicy policy;
    };
    TextTable study("Goodput fraction by recovery policy "
                    "(per-policy Young-Daly tuning, common fault seed)");
    study.header({"GPUs", "full/sync", "full/async", "warm/sync",
                  "elastic (spares+shrink+async)"});
    double full_sync_16k = 0.0;
    double elastic_16k = 0.0;
    for (const ScalePoint &sp : scales) {
        RecoveryPolicy full_async;
        full_async.checkpoint_mode = CheckpointMode::Async;
        RecoveryPolicy warm_sync;
        warm_sync.mode = RecoveryMode::WarmSpare;
        warm_sync.spare_hosts = sp.spares;
        const PolicyColumn columns[] = {
            {"full/sync", RecoveryPolicy{}},
            {"full/async", full_async},
            {"warm/sync", warm_sync},
            {"elastic", RecoveryPolicy::elastic(sp.spares)},
        };
        std::vector<std::string> row = {TextTable::num(sp.gpus)};
        for (const PolicyColumn &col : columns) {
            TrainRunConfig pcfg;
            pcfg.job.cluster = ClusterSpec::llama3Production(sp.gpus);
            pcfg.job.par = sp.par;
            pcfg.job.global_batch_tokens = sp.batch_tokens;
            pcfg.total_steps = 12000; // ~1 simulated day per cell
            pcfg.seed = 54 + static_cast<std::uint64_t>(sp.gpus);
            pcfg.policy = col.policy;
            pcfg.checkpoint_interval_steps =
                TrainRunSim(pcfg).youngDalyIntervalSteps();
            const TrainRunReport r = TrainRunSim(pcfg).run();
            row.push_back(TextTable::pct(r.goodputFraction()));
            if (sp.gpus == 16384) {
                if (std::string(col.name) == "full/sync")
                    full_sync_16k = r.goodputFraction();
                else if (std::string(col.name) == "elastic")
                    elastic_16k = r.goodputFraction();
            }
        }
        study.row(row);
    }
    study.print();
    bench::compare("16K goodput fraction, elastic vs full/sync",
                   full_sync_16k, elastic_16k);
    std::puts("  The gap widens with scale: every fault costs the whole\n"
              "  synchronized job, and the elastic stack turns each 180 s\n"
              "  scheduler round-trip into a ~80 s spare swap while async\n"
              "  checkpointing shrinks both the blocking save and the\n"
              "  rollback window.");

    // --- Regrow study: shrink-only vs host-repair + DP-regrow under ---
    // common random numbers. A shrink-capable 16K job (240-sequence
    // batch at dp 16: a unit shrink keeps micro-batch divisibility)
    // with a one-host spare pool; both runs per seed face the identical
    // exogenous fault AND repair timelines, so the delta isolates the
    // policy bit. Shrink-only limps at the reduced width forever and
    // pays full restarts once the pool is dry; regrow re-admits
    // repaired hosts at checkpoint boundaries.
    TextTable regrow_study("Shrink-only vs DP-regrow, CRN seed sweep "
                           "(tp8 cp8 pp16 dp16, 1 spare host)");
    regrow_study.header({"seed", "goodput/GPU shrink-only",
                         "goodput/GPU regrow", "shrinks", "regrows",
                         "final dp", "delta"});
    double mean_ratio = 0.0;
    int swept = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        TrainRunConfig ecfg;
        ecfg.job.par = ParallelismConfig{8, 8, 16, 16};
        ecfg.job.global_batch_tokens = 240LL * 8192;
        ecfg.job.cluster.node.gpu.straggler_mtbf_hours = 0.0;
        ecfg.job.cluster.node.nic_flap_mtbf_hours = 0.0;
        ecfg.job.cluster.node.gpu.fatal_mtbf_hours = 2000.0;
        ecfg.total_steps = 3600;
        ecfg.checkpoint_interval_steps = 20;
        ecfg.policy = RecoveryPolicy::elastic(1);
        ecfg.repairs.gpu_repair_mean_hours = 0.2;
        ecfg.repairs.host_repair_mean_hours = 0.3;
        ecfg.seed = seed;
        TrainRunConfig rcfg = ecfg;
        rcfg.policy.allow_regrow = true;
        const TrainRunReport shrank = TrainRunSim(ecfg).run();
        const TrainRunReport regrew = TrainRunSim(rcfg).run();
        mean_ratio += regrew.goodput_tflops_per_gpu /
                      shrank.goodput_tflops_per_gpu;
        ++swept;
        regrow_study.row(
            {TextTable::num(static_cast<std::int64_t>(seed)),
             TextTable::num(shrank.goodput_tflops_per_gpu, 1),
             TextTable::num(regrew.goodput_tflops_per_gpu, 1),
             TextTable::num(regrew.dp_shrinks),
             TextTable::num(regrew.dp_regrows),
             TextTable::num(regrew.final_dp),
             TextTable::pct(regrew.goodput_tflops_per_gpu /
                                shrank.goodput_tflops_per_gpu -
                            1.0)});
    }
    regrow_study.print();
    bench::compare("regrow / shrink-only goodput (mean over seeds, > 1)",
                   1.05, mean_ratio / swept);
    std::puts("  Shrink-only keeps training through the outage but cedes\n"
              "  1/16 of the cluster for the rest of the run and, with the\n"
              "  pool dry, pays a scheduler round-trip per further fault.\n"
              "  Regrow re-admits each repaired host at the next durable\n"
              "  checkpoint: the pool stays warm and the DP width climbs\n"
              "  back to the configured degree.");

    // --- Hierarchical tiers + partial restart vs global-only under ---
    // common random numbers. Same elastic 16K job; the tiered arm adds
    // HBM peer mirrors at every boundary (global write every 16th) and
    // partial restart, so a fatal fault rolls back steps since the last
    // cheap mirror instead of the last expensive global write, and only
    // the replacement host re-fetches shards from its DP peers. Both
    // arms are Young-Daly tuned to their own blocking cost, so the
    // tiered arm also checkpoints far more often for the same overhead.
    TextTable hier_study("Global-only vs hierarchical+partial restart, "
                         "CRN seed sweep (tp8 cp8 pp16 dp16, 1 spare)");
    hier_study.header({"seed", "goodput/GPU global", "goodput/GPU hier",
                       "partial restarts", "tier fallbacks",
                       "HBM restore s", "delta"});
    double hier_mean_ratio = 0.0;
    int hier_swept = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        TrainRunConfig gcfg;
        gcfg.job.par = ParallelismConfig{8, 8, 16, 16};
        gcfg.job.global_batch_tokens = 240LL * 8192;
        gcfg.job.cluster.node.gpu.straggler_mtbf_hours = 0.0;
        gcfg.job.cluster.node.nic_flap_mtbf_hours = 0.0;
        // A worn fleet: frequent fatals make the restore path and the
        // rollback window the dominant goodput terms.
        gcfg.job.cluster.node.gpu.fatal_mtbf_hours = 1000.0;
        gcfg.total_steps = 3600;
        gcfg.policy = RecoveryPolicy::elastic(1);
        gcfg.repairs.gpu_repair_mean_hours = 0.2;
        gcfg.repairs.host_repair_mean_hours = 0.3;
        gcfg.seed = seed;
        TrainRunConfig hcfg = gcfg;
        hcfg.storage.hier.enabled = true;
        hcfg.policy.partial_restart = true;
        gcfg.checkpoint_interval_steps =
            TrainRunSim(gcfg).youngDalyIntervalSteps();
        hcfg.checkpoint_interval_steps =
            TrainRunSim(hcfg).youngDalyIntervalSteps();
        const TrainRunReport global_only = TrainRunSim(gcfg).run();
        const TrainRunReport hier = TrainRunSim(hcfg).run();
        hier_mean_ratio += hier.goodput_tflops_per_gpu /
                           global_only.goodput_tflops_per_gpu;
        ++hier_swept;
        hier_study.row(
            {TextTable::num(static_cast<std::int64_t>(seed)),
             TextTable::num(global_only.goodput_tflops_per_gpu, 1),
             TextTable::num(hier.goodput_tflops_per_gpu, 1),
             TextTable::num(hier.partial_restarts),
             TextTable::num(hier.tier_fallbacks),
             TextTable::num(
                 hier.tier_restore_seconds[static_cast<std::size_t>(
                     CheckpointTier::HbmPeer)],
                 1),
             TextTable::pct(hier.goodput_tflops_per_gpu /
                                global_only.goodput_tflops_per_gpu -
                            1.0)});
    }
    hier_study.print();
    bench::compare("hier+partial / global-only goodput (mean, > 1)", 1.02,
                   hier_mean_ratio / hier_swept);
    std::puts("  The HBM peer mirror costs ~0.1 s where a global sharded\n"
              "  write costs seconds, so the tiered run checkpoints every\n"
              "  few steps; a GpuFatal then loses almost no work and its\n"
              "  swap reads from the peer mirror instead of the filesystem.\n"
              "  Only a HostCrash — which destroys that host's local\n"
              "  copies — falls back to the global tier.");

    // --- Correlated vs independent stragglers under common random ---
    // numbers. Straggler-dominated runs at 8K and 16K; per seed both
    // arms share the fatal timeline and every detection draw, and the
    // pod-heat model samples from its own registered streams, so the
    // goodput delta isolates the correlation structure. Heat makes
    // onsets cluster into one pod at a time with worse severities, so
    // the jointly-priced step sees concurrent multi-stage stragglers
    // the independent arm rarely produces.
    TextTable corr_study("Independent vs pod-correlated stragglers, "
                         "CRN seed sweep (bursty heat, 4000 h MTBF)");
    corr_study.header({"GPUs", "seed", "onsets indep", "onsets corr",
                       "busiest pod", "goodput/GPU indep",
                       "goodput/GPU corr", "delta"});
    int swept_8k = 0;
    const double ratio_8k =
        correlationSweep(8192, ParallelismConfig{8, 1, 16, 64},
                         8LL * 1024 * 1024, 1200, 1, 6, corr_study,
                         swept_8k);
    int swept_16k = 0;
    const double ratio_16k =
        correlationSweep(16384, ParallelismConfig{8, 1, 16, 128},
                         16LL * 1024 * 1024, 1200, 1, 6, corr_study,
                         swept_16k);
    corr_study.print();
    bench::compare("8K correlated / independent goodput (mean, < 1)", 1.0,
                   ratio_8k / swept_8k);
    bench::compare("16K correlated / independent goodput (mean, < 1)",
                   1.0, ratio_16k / swept_16k);
    std::puts("  Independent sampling spreads the same per-GPU hazard\n"
              "  evenly, so concurrent stragglers rarely share a step;\n"
              "  pod heat concentrates them into bursts on one pod whose\n"
              "  compounded, worse-severity slowdown the jointly-priced\n"
              "  degraded step pays for in full.");
    return 0;
}
