/**
 * @file
 * Goodput under production failure rates (paper Section 8; Llama 3 tech
 * report Section 3.3.4: 419 unexpected interruptions over 54 days on
 * 16,384 GPUs, yet >90% effective training time thanks to automated
 * recovery).
 *
 * Reproduces the operations story end-to-end through the fault subsystem:
 * the simulated 16K run must keep >=90% effective training time at the
 * calibrated MTBF, its interruption cadence must land near one every
 * three hours, and the Young-Daly checkpoint interval must sit at the
 * goodput maximum of an interval scan.
 */

#include "bench_util.h"

#include <algorithm>
#include <vector>

#include "llm4d/sim/train_run_sim.h"

using namespace llm4d;

int
main()
{
    bench::banner("Section 8 / Llama 3 3.3.4 — goodput under failures",
                  ">90% effective training time at a ~3h cluster MTBF; "
                  "checkpoint interval near Young-Daly optimum");

    TrainRunConfig cfg; // 405B, 16,384 H100s, Table-2 parallelism
    cfg.total_steps = 20000; // ~1.5 simulated days
    cfg.seed = 54;
    const TrainRunSim sim(cfg);
    cfg.checkpoint_interval_steps = sim.youngDalyIntervalSteps();
    const TrainRunSim tuned(cfg);
    const TrainRunReport rep = tuned.run();

    // Llama 3: 419 interruptions / (54 d * 24 h) = 0.32 events/hour.
    const double interruptions_per_hour =
        static_cast<double>(rep.faults.total()) /
        (rep.wall_seconds / 3600.0);
    bench::compare("interruptions per hour (16K GPUs)", 419.0 / (54 * 24),
                   interruptions_per_hour);
    bench::compare("effective training time", 0.90,
                   rep.goodputFraction());
    bench::compare("goodput TFLOPs/GPU vs fault-free base",
                   rep.base_tflops_per_gpu, rep.goodput_tflops_per_gpu);

    TextTable table("Run at the Young-Daly checkpoint interval");
    table.header({"metric", "value"});
    table.row({"checkpoint interval",
               TextTable::num(cfg.checkpoint_interval_steps) + " steps (" +
                   TextTable::num(cfg.checkpoint_interval_steps *
                                      tuned.baseStep().step_seconds / 60.0,
                                  1) +
                   " min)"});
    table.row({"fatal interruptions",
               TextTable::num(rep.faults.gpu_fatal + rep.faults.host_crash)});
    table.row({"stragglers / link flaps",
               TextTable::num(rep.faults.stragglers) + " / " +
                   TextTable::num(rep.faults.link_flaps)});
    table.row({"steps lost to rollback", TextTable::num(rep.steps_lost)});
    table.row({"availability", TextTable::pct(rep.availability)});
    table.print();

    // Interval scan: the empirical optimum should bracket Young-Daly.
    const std::int64_t yd = cfg.checkpoint_interval_steps;
    const std::vector<std::int64_t> intervals = {yd / 4, yd / 2, yd, 2 * yd,
                                                 4 * yd};
    const auto points = tuned.scanCheckpointIntervals(intervals);
    TextTable scan("Goodput vs checkpoint interval (common fault timeline)");
    scan.header({"interval (steps)", "goodput TFLOPs/GPU"});
    for (const auto &pt : points)
        scan.row({TextTable::num(pt.interval_steps),
                  TextTable::num(pt.goodput_tflops_per_gpu, 1)});
    scan.print();
    const auto best = std::max_element(
        points.begin(), points.end(),
        [](const IntervalScanPoint &a, const IntervalScanPoint &b) {
            return a.goodput_tflops_per_gpu < b.goodput_tflops_per_gpu;
        });
    bench::compare("optimal interval / Young-Daly", 1.0,
                   static_cast<double>(best->interval_steps) /
                       static_cast<double>(yd));
    return 0;
}
