/**
 * @file
 * Quantifies paper Figure 3: how the flexible schedule's nc parameter
 * (consecutive micro-batches per round) trades pipeline bubble against
 * in-flight activation memory, with exposed P2P communication.
 *
 *  - nc < pp: degenerates to all-forward-all-backward;
 *  - nc = pp: classic interleaved 1F1B, P2P exposed in steady state;
 *  - nc > pp: (nc - pp) extra warm-up micro-batches per virtual stage
 *    hide the P2P at the cost of (nc-pp)*(v-1) extra in-flight
 *    micro-batches.
 */

#include "bench_util.h"

#include "llm4d/pp/executor.h"

using namespace llm4d;

int
main()
{
    bench::banner("Figure 3 — extra warm-up micro-batches vs P2P bubbles",
                  "raising nc above pp hides exposed P2P; memory grows by "
                  "(nc-pp)*(v-1) in-flight micro-batches");

    // A pp=4, v=4 pipeline with meaningful P2P cost relative to stage
    // compute (cross-node hops).
    const std::int64_t pp = 4, v = 4, nmb = 24;
    const double fwd = 3e-3, bwd = 6e-3, p2p = 0.8e-3;

    TextTable table("nc sweep (pp=4, v=4, nmb=24, p2p=0.8ms/hop)");
    table.header({"nc", "regime", "bubble", "makespan ms",
                  "peak in-flight mb", "extra vs 1F1B"});
    std::int64_t inflight_1f1b = 0;
    double bubble_1f1b = 0.0, bubble_best = 1.0;
    for (std::int64_t nc : {1, 2, 4, 6, 8, 12, 24}) {
        const ScheduleParams params{pp, v, nmb, nc};
        const Schedule sched = buildFlexible(params);
        const ExecResult exec =
            executeSchedule(sched, ExecConfig::uniform(fwd, bwd, p2p));
        const std::int64_t inflight = exec.peakInFlight(0);
        if (nc == pp) {
            inflight_1f1b = inflight;
            bubble_1f1b = exec.overallBubbleRatio();
        }
        bubble_best = std::min(bubble_best, exec.overallBubbleRatio());
        const char *regime = nc < pp ? "AFAB (degenerate)"
                             : nc == pp ? "classic 1F1B"
                                        : "flexible, extra warm-up";
        table.row({TextTable::num(nc), regime,
                   TextTable::pct(exec.overallBubbleRatio()),
                   TextTable::num(timeToMillis(exec.makespan), 1),
                   TextTable::num(inflight),
                   nc > pp ? TextTable::num(flexibleExtraInFlight(params))
                           : std::string("-")});
    }
    table.print();

    bench::compare("bubble: best flexible vs classic 1F1B (ratio)", 0.6,
                   bubble_best / bubble_1f1b);
    std::printf("in-flight at nc=pp: %lld micro-batches; each nc step "
                "above pp adds v-1 = %lld more (Section 3.1.1).\n",
                static_cast<long long>(inflight_1f1b),
                static_cast<long long>(v - 1));
    return 0;
}
