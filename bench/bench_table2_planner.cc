/**
 * @file
 * Reproduces paper Table 2: the 4D parallelism configuration for Llama 3
 * 405B pre-training on 16,384 GPUs with a 16M-token global batch, at 8K
 * and 131K context, derived automatically by the Section-5 planner.
 */

#include "bench_util.h"

#include <optional>

#include "llm4d/plan/planner.h"

using namespace llm4d;

namespace {

void
planPhase(const char *phase, std::int64_t seq, TextTable &out)
{
    PlanInput in;
    in.seq = seq;
    const std::optional<PlanCandidate> best = tryBestPlan(in);
    if (!best) {
        out.row({phase, TextTable::num(seq), "-", "-", "-", "-", "-", "-",
                 "-", "infeasible"});
        return;
    }
    const std::int64_t gbs = in.global_batch_tokens / seq;
    out.row({phase, TextTable::num(seq), TextTable::num(gbs),
             TextTable::num(best->par.tp), TextTable::num(best->par.cp),
             TextTable::num(best->par.pp), TextTable::num(best->par.dp),
             zeroModeName(best->zero),
             TextTable::num(best->est_tflops_per_gpu, 0),
             TextTable::num(best->est_memory_gib, 1)});
}

void
showRanked(const char *phase, std::int64_t seq)
{
    PlanInput in;
    in.seq = seq;
    TextTable t(std::string("Candidate ranking, ") + phase);
    t.header({"config", "zero", "bs", "est step s", "est TFLOPs",
              "mem GiB", "bubble", "status"});
    int shown = 0;
    for (const PlanCandidate &c : enumeratePlans(in)) {
        if (!c.feasible && shown >= 8)
            continue;
        t.row({c.par.str(), zeroModeName(c.zero), TextTable::num(c.bs),
               c.feasible ? TextTable::num(c.est_step_seconds, 3) : "-",
               c.feasible ? TextTable::num(c.est_tflops_per_gpu, 0) : "-",
               c.feasible ? TextTable::num(c.est_memory_gib, 1) : "-",
               c.feasible ? TextTable::pct(c.bubble_ratio) : "-",
               c.feasible ? "ok" : toString(c.reject_reason)});
        if (++shown >= 12)
            break;
    }
    t.print();
}

} // namespace

int
main()
{
    bench::banner("Table 2 — parallelism configuration planner",
                  "8K: tp8 cp1 pp16 dp128; 131K: tp8 cp16 pp16 dp8");

    TextTable table("Table 2 (reproduced): 405B / 16M tokens / 16K GPUs");
    table.header({"phase", "seq", "gbs", "TP", "CP", "PP", "DP", "zero",
                  "est TFLOPs/GPU", "mem GiB"});
    planPhase("short context", 8192, table);
    planPhase("long context", 131072, table);
    table.print();

    showRanked("8K context", 8192);
    showRanked("131K context", 131072);

    std::printf("Paper values: 8K -> TP8 CP1 PP16 DP128 (gbs 2048); "
                "131K -> TP8 CP16 PP16 DP8 (gbs 128).\n");
    return 0;
}
