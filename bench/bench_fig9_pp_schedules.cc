/**
 * @file
 * Reproduces paper Figure 9: training TFLOPs and max allocated memory for
 * all-forward-all-backward, classic interleaved 1F1B, and the flexible PP
 * schedule, on the Section-7.1 scaled-down model (405B dimensions, 26
 * layers, pp=4, bs=12, seq 8192).
 *
 * Paper shape: 1F1B has the lowest memory AND the lowest TFLOPs (exposed
 * P2Ps); AFAB the highest of both; flexible sits between on memory while
 * matching AFAB-class throughput.
 */

#include "bench_util.h"

#include "llm4d/sim/train_sim.h"

using namespace llm4d;

namespace {

TrainJobConfig
scaledDownJob()
{
    TrainJobConfig cfg;
    cfg.model = ModelConfig::scaledDown405b(26);
    cfg.par = ParallelismConfig{8, 1, 4, 2}; // 64 GPUs
    cfg.cluster = ClusterSpec::llama3Production(64);
    cfg.seq = 8192;
    // bs = 12 sequences per DP group -> 24 total across dp=2.
    cfg.global_batch_tokens = 24 * cfg.seq;
    cfg.zero = ZeroMode::Zero1;
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Figure 9 — AFAB vs 1F1B vs flexible PP",
                  "TFLOPs: AFAB ~403 > flexible ~400 > 1F1B ~397.5; "
                  "memory: AFAB ~49.5GB > flexible ~47GB > 1F1B ~44GB");

    struct Variant
    {
        const char *label;
        ScheduleKind kind;
        std::int64_t nc;
    };
    // AFAB: all 12 at once. 1F1B: pp=4 consecutive, 3 rounds. Flexible:
    // 6 consecutive, 2 rounds (exactly the Section 7.1.1 setup).
    const Variant variants[] = {
        {"AllFallB", ScheduleKind::AllForwardAllBackward, 12},
        {"1F1B", ScheduleKind::Interleaved1F1B, 4},
        {"Flexible", ScheduleKind::Flexible, 6},
    };

    TextTable table("Figure 9 (reproduced): schedule comparison");
    table.header({"schedule", "TFLOPs/GPU", "max memory GiB", "bubble",
                  "step s"});
    double tflops[3] = {}, mem[3] = {};
    int i = 0;
    for (const Variant &variant : variants) {
        TrainJobConfig cfg = scaledDownJob();
        cfg.schedule = variant.kind;
        cfg.nc = variant.nc;
        const TrainStepReport rep = TrainSim(cfg).run();
        table.row({variant.label, TextTable::num(rep.tflops_per_gpu, 1),
                   TextTable::num(rep.maxMemoryGib(), 1),
                   TextTable::pct(rep.bubble_ratio),
                   TextTable::num(rep.step_seconds, 3)});
        tflops[i] = rep.tflops_per_gpu;
        mem[i] = rep.maxMemoryGib();
        ++i;
    }
    table.print();

    std::printf("shape checks:\n");
    std::printf("  memory  AFAB > Flexible > 1F1B : %s (%.1f > %.1f > %.1f)\n",
                mem[0] > mem[2] && mem[2] > mem[1] ? "yes" : "NO",
                mem[0], mem[2], mem[1]);
    std::printf("  tflops  1F1B lowest            : %s (%.1f vs %.1f/%.1f)\n",
                tflops[1] < tflops[0] && tflops[1] < tflops[2] ? "yes"
                                                               : "NO",
                tflops[1], tflops[0], tflops[2]);
    return 0;
}
