/**
 * @file
 * Google-benchmark microbenchmarks of the library itself: schedule
 * generation/execution, collective pricing, executable CP attention, and
 * full training-step simulation. These guard the simulator's own
 * performance (an 8K-GPU imbalance sweep must stay interactive).
 */

#include <benchmark/benchmark.h>

#include "llm4d/cp/cp_attention.h"
#include "llm4d/net/collective.h"
#include "llm4d/plan/planner.h"
#include "llm4d/pp/executor.h"
#include "llm4d/sim/train_sim.h"

using namespace llm4d;

namespace {

void
BM_BuildFlexibleSchedule(benchmark::State &state)
{
    const ScheduleParams p{16, 8, state.range(0), 16};
    for (auto _ : state) {
        Schedule s = buildFlexible(p);
        benchmark::DoNotOptimize(s.program(0).size());
    }
}
BENCHMARK(BM_BuildFlexibleSchedule)->Arg(16)->Arg(64)->Arg(256);

void
BM_ExecuteSchedule(benchmark::State &state)
{
    const Schedule s =
        buildFlexible(ScheduleParams{16, 8, state.range(0), 16});
    const ExecConfig cfg = ExecConfig::uniform(9e-3, 18e-3, 1e-3);
    for (auto _ : state) {
        ExecResult r = executeSchedule(s, cfg);
        benchmark::DoNotOptimize(r.makespan);
    }
}
BENCHMARK(BM_ExecuteSchedule)->Arg(16)->Arg(64);

void
BM_CollectivePricing(benchmark::State &state)
{
    const ClusterSpec spec = ClusterSpec::llama3Production(16384);
    const Topology topo(spec);
    const CollectiveModel coll(topo);
    std::vector<std::int64_t> group;
    for (std::int64_t r = 0; r < state.range(0); ++r)
        group.push_back(r * 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(coll.allGather(group, 1 << 20));
}
BENCHMARK(BM_CollectivePricing)->Arg(8)->Arg(128);

void
BM_CpAttentionExec(benchmark::State &state)
{
    Rng rng(1);
    const std::int64_t seq = state.range(0);
    const Tensor q = Tensor::randn({2, seq, 16}, rng);
    const Tensor k = Tensor::randn({1, seq, 16}, rng);
    const Tensor v = Tensor::randn({1, seq, 16}, rng);
    Rng mask_rng(2);
    const DocMask mask = DocMask::sample(seq, 16.0, mask_rng);
    const CpSharding sharding(seq, 2);
    for (auto _ : state) {
        CpRankResult r =
            allGatherCpForward(q, k, v, mask, sharding, 0);
        benchmark::DoNotOptimize(r.out.data());
    }
}
BENCHMARK(BM_CpAttentionExec)->Arg(64)->Arg(128);

void
BM_TrainStepSimulation(benchmark::State &state)
{
    TrainJobConfig cfg; // production 8K step, 16K simulated GPUs
    const TrainSim sim(cfg);
    for (auto _ : state) {
        TrainStepReport rep = sim.run();
        benchmark::DoNotOptimize(rep.tflops_per_gpu);
    }
}
BENCHMARK(BM_TrainStepSimulation);

void
BM_PlannerEnumeration(benchmark::State &state)
{
    PlanInput in;
    for (auto _ : state) {
        auto plans = enumeratePlans(in);
        benchmark::DoNotOptimize(plans.size());
    }
}
BENCHMARK(BM_PlannerEnumeration);

} // namespace

BENCHMARK_MAIN();
