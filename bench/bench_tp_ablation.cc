/**
 * @file
 * Reproduces the paper's Section 8.1 HBM-capacity ablation: "in Llama 3
 * small scale experiments on 2K GPUs, we observed approximately 10%
 * end-to-end performance improvement by reducing TP size from 8 to 4" —
 * less tensor sharding amortizes communication better, but the tp=4
 * configuration needs more HBM per GPU, which is the paper's argument for
 * higher-capacity memory.
 */

#include "bench_util.h"

#include "llm4d/sim/train_sim.h"

using namespace llm4d;

namespace {

TrainStepReport
run(std::int64_t tp, std::int64_t dp)
{
    TrainJobConfig cfg;
    cfg.par = ParallelismConfig{tp, 1, 16, dp};
    cfg.cluster = ClusterSpec::llama3Production(2048);
    cfg.global_batch_tokens = 4LL * 1024 * 1024; // 512 sequences
    return TrainSim(cfg).run();
}

} // namespace

int
main()
{
    bench::banner("Section 8.1 ablation — TP 8 -> 4 on 2K GPUs",
                  "~10% end-to-end improvement, enabled by extra HBM");

    const TrainStepReport tp8 = run(8, 16);
    const TrainStepReport tp4 = run(4, 32);

    TextTable table("TP ablation (reproduced), 405B on 2048 GPUs");
    table.header({"config", "TFLOPs/GPU", "bubble", "exposed tp s",
                  "mem GiB", "fits 80 GiB", "fits 141 GiB"});
    for (const auto &[label, rep] :
         {std::pair<const char *, const TrainStepReport &>{"tp8 pp16 dp16",
                                                           tp8},
          {"tp4 pp16 dp32", tp4}}) {
        table.row({label, TextTable::num(rep.tflops_per_gpu, 0),
                   TextTable::pct(rep.bubble_ratio),
                   TextTable::num(rep.exposed_tp_seconds, 2),
                   TextTable::num(rep.maxMemoryGib(), 1),
                   rep.fits(80.0) ? "yes" : "NO",
                   rep.fits(141.0) ? "yes" : "NO"});
    }
    table.print();

    bench::compare("end-to-end gain from tp8 -> tp4 (%)", 10.0,
                   (tp4.tflops_per_gpu / tp8.tflops_per_gpu - 1.0) * 100.0);
    std::printf("tp=4 %s in 80 GiB — the gain is only reachable with "
                "higher HBM capacity\n(Section 8.1's recommendation).\n",
                tp4.fits(80.0) ? "unexpectedly fits" : "does NOT fit");
    return 0;
}
