/**
 * @file
 * Fault-aware planning (paper Sections 5 + 8): re-rank the Section-5
 * planner's candidates by simulated goodput under failures and show
 * where the goodput-optimal plan diverges from the fault-free
 * TFLOPs-optimal one.
 *
 * The analytic planner prices a fault-free step; at production scale
 * the ranking that matters also charges restart blast radius,
 * checkpoint overhead, and spare-pool capacity (MegaScale
 * arXiv:2402.15627). Because recovery charges are absolute costs,
 * near-tied candidates reorder once they are priced — this bench
 * sweeps 2K-16K GPUs under a common fault seed per scale and flags
 * every divergence.
 */

#include "bench_util.h"

#include <optional>
#include <string>
#include <string_view>

#include "llm4d/plan/goodput_planner.h"

using namespace llm4d;

namespace {

std::string
policyName(const RecoveryPolicy &p)
{
    std::string name = toString(p.mode);
    name += "/";
    name += toString(p.checkpoint_mode);
    if (p.allow_dp_shrink)
        name += "+shrink";
    if (p.allow_regrow)
        name += "+regrow";
    if (p.partial_restart)
        name += "+partial";
    if (p.spare_placement != SparePlacementPolicy::CentralPool) {
        name += "+";
        name += toString(p.spare_placement);
    }
    if (p.placement_migration)
        name += "+mig";
    return name;
}

/** Pin the hierarchical-tier and partial-restart axes off so the
 *  legacy studies keep their original grid (and runtime). */
void
pinLegacyAxes(GoodputPlanInput &in)
{
    in.hier_global_every_options = {0};
    in.partial_restart_options = {false};
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--smoke")
            smoke = true;
    }

    bench::banner(
        "Sections 5+8 — goodput-aware parallelism planning",
        "the goodput-optimal plan diverges from the fault-free "
        "TFLOPs-optimal plan once recovery costs are charged");

    if (smoke) {
        // CI-sized pass: one small scale, a trimmed policy grid, and
        // the spare-placement axis exercised end to end (CentralPool
        // with migration is placement-aware, so both the cross-pod
        // pricing and the migrate-home path run).
        GoodputPlanInput gin;
        gin.base.cluster = ClusterSpec::llama3Production(2048);
        // A 2K fleet has an eighth of the 16K failure rate; wear it
        // hard enough that the short horizon still sees swaps.
        gin.base.cluster.node.gpu.fatal_mtbf_hours /= 24.0;
        gin.base.cluster.node.host_mtbf_hours /= 24.0;
        gin.base.global_batch_tokens = 2048 * 1024;
        gin.fault_seed = 54 + 2048;
        pinLegacyAxes(gin);
        gin.top_k = 2;
        gin.horizon_steps = 1500;
        gin.spare_pool_options = {2};
        gin.checkpoint_mode_options = {CheckpointMode::Async};
        gin.dp_shrink_options = {false};
        gin.regrow_options = {false};
        gin.placement_options = {SparePlacementPolicy::CentralPool,
                                 SparePlacementPolicy::PerPodReserve};
        gin.placement_migration = true;
        // Repairs quick enough that a displaced rank can migrate home
        // inside the short horizon.
        gin.repairs.gpu_repair_mean_hours = 0.1;
        gin.repairs.host_repair_mean_hours = 0.15;
        const std::vector<GoodputPlanCandidate> ranked =
            planGoodput(gin);
        if (ranked.empty()) {
            std::puts("smoke: no feasible plan");
            return 1;
        }
        TextTable sm("Smoke: 2K-GPU placement cells (worn fleet)");
        sm.header({"config", "policy", "goodput/GPU", "swaps",
                   "cross-pod", "migrations"});
        for (const GoodputSweepPoint &pt : ranked.front().sweep) {
            sm.row({ranked.front().analytic.par.str(),
                    policyName(pt.policy),
                    TextTable::num(pt.goodput_tflops_per_gpu, 1),
                    TextTable::num(pt.report.spare_swaps),
                    TextTable::num(pt.report.cross_pod_swaps),
                    TextTable::num(pt.report.placement_migrations)});
        }
        sm.print();
        std::puts("smoke: ok");
        return 0;
    }

    // --- Divergence sweep across cluster scales. ---
    TextTable sweep("Fault-free winner vs goodput winner per scale "
                    "(16M-token batch scaled down with the cluster)");
    sweep.header({"GPUs", "fault-free winner", "goodput winner",
                  "policy", "spares", "ckpt every", "goodput/GPU",
                  "diverged?"});
    int divergences = 0;
    for (const std::int64_t ngpu : {2048, 4096, 8192, 16384}) {
        GoodputPlanInput gin;
        gin.base.cluster = ClusterSpec::llama3Production(ngpu);
        // 16M tokens on 16K GPUs = 1024 tokens/GPU; hold that constant
        // as the cluster shrinks so every scale has the same pressure.
        gin.base.global_batch_tokens = ngpu * 1024;
        gin.fault_seed = 54 + static_cast<std::uint64_t>(ngpu);
        pinLegacyAxes(gin);
        const std::optional<PlanCandidate> analytic =
            tryBestPlan(gin.base);
        const std::optional<GoodputPlanCandidate> winner =
            tryBestGoodputPlan(gin);
        if (!analytic || !winner) {
            sweep.row({TextTable::num(ngpu), "infeasible", "-", "-", "-",
                       "-", "-", "-"});
            continue;
        }
        const GoodputSweepPoint &cell = winner->best();
        const bool same = winner->analytic.par == analytic->par &&
                          winner->analytic.zero == analytic->zero &&
                          winner->analytic.schedule == analytic->schedule;
        divergences += same ? 0 : 1;
        sweep.row({TextTable::num(ngpu), analytic->par.str(),
                   winner->analytic.par.str(), policyName(cell.policy),
                   TextTable::num(cell.policy.spare_hosts),
                   TextTable::num(cell.checkpoint_interval_steps) +
                       " steps",
                   TextTable::num(winner->goodput_tflops_per_gpu, 1),
                   same ? "no" : "DIVERGED"});
    }
    sweep.print();
    bench::compare("scales where the two rankings diverge (of 4)", 1.0,
                   static_cast<double>(divergences));

    // --- Full ranking at 16K GPUs: why the winner wins. ---
    GoodputPlanInput gin;
    gin.fault_seed = 54 + 16384;
    pinLegacyAxes(gin);
    const std::optional<PlanCandidate> analytic = tryBestPlan(gin.base);
    TextTable ranked("16K-GPU candidates ranked by goodput "
                     "(best policy per candidate, common fault seed)");
    ranked.header({"rank", "config", "est TFLOPs", "policy", "goodput/GPU",
                   "lost %", "ckpt %", "degraded %", "note"});
    std::int64_t rank = 0;
    const std::vector<GoodputPlanCandidate> scored = planGoodput(gin);
    if (scored.empty()) {
        std::puts("no feasible 16K-GPU plan");
        return 1;
    }
    for (const GoodputPlanCandidate &cand : scored) {
        const GoodputSweepPoint &cell = cand.best();
        const TrainRunReport &rep = cell.report;
        const bool is_analytic =
            analytic && cand.analytic.par == analytic->par &&
            cand.analytic.zero == analytic->zero;
        ranked.row({TextTable::num(++rank), cand.analytic.par.str(),
                    TextTable::num(cand.analytic.est_tflops_per_gpu, 0),
                    policyName(cell.policy),
                    TextTable::num(cand.goodput_tflops_per_gpu, 1),
                    TextTable::pct(rep.lost_seconds / rep.wall_seconds),
                    TextTable::pct(rep.checkpoint_seconds /
                                   rep.wall_seconds),
                    TextTable::pct(rep.degraded_seconds /
                                   rep.wall_seconds),
                    is_analytic ? "<- fault-free winner" : ""});
    }
    ranked.print();

    // --- The winner's policy sweep: what each recovery lever buys. ---
    const GoodputPlanCandidate &best = scored.front();
    TextTable cells(std::string("Policy sweep for ") +
                    best.analytic.par.str() +
                    " (goodput per provisioned GPU)");
    cells.header({"policy", "spares", "ckpt every", "goodput/GPU",
                  "restarts", "swaps", "shrinks", "regrows", "best?"});
    for (std::size_t i = 0; i < best.sweep.size(); ++i) {
        const GoodputSweepPoint &pt = best.sweep[i];
        cells.row({policyName(pt.policy),
                   TextTable::num(pt.policy.spare_hosts),
                   TextTable::num(pt.checkpoint_interval_steps) + " steps",
                   TextTable::num(pt.goodput_tflops_per_gpu, 1),
                   TextTable::num(pt.report.restarts),
                   TextTable::num(pt.report.spare_swaps),
                   TextTable::num(pt.report.dp_shrinks),
                   TextTable::num(pt.report.dp_regrows),
                   i == best.best_point ? "<- best" : ""});
    }
    cells.print();

    // --- Regrow sweep axis on a worn fleet: with production MTBFs the ---
    // horizon sees ~2 faults and an 8-host pool never drains, so the
    // regrow cells tie their regrow-off twins. Divide the fatal MTBFs
    // by 3 (a fleet past its prime) and shrink the pool to 2 hosts and
    // the axis starts paying: repaired hosts refill the pool between
    // faults, turning stop-the-world restarts back into ~80 s swaps.
    // Re-rank each scale with the axis pinned off and compare.
    TextTable rg("Regrow axis impact, worn fleet (fatal MTBF / 3, "
                 "2-host pool, winning cell with vs without regrow)");
    rg.header({"GPUs", "goodput/GPU (no regrow)", "policy (no regrow)",
               "goodput/GPU (regrow swept)", "policy (regrow swept)",
               "impact"});
    double margin_16k = 0.0;
    for (const std::int64_t ngpu : {2048, 4096, 8192, 16384}) {
        GoodputPlanInput in;
        in.base.cluster = ClusterSpec::llama3Production(ngpu);
        in.base.cluster.node.gpu.fatal_mtbf_hours /= 3.0;
        in.base.cluster.node.host_mtbf_hours /= 3.0;
        in.base.global_batch_tokens = ngpu * 1024;
        in.fault_seed = 54 + static_cast<std::uint64_t>(ngpu);
        pinLegacyAxes(in);
        in.spare_pool_options = {0, 2};
        in.horizon_steps = 9000;
        in.repairs.gpu_repair_mean_hours = 0.5;
        in.repairs.host_repair_mean_hours = 0.75;
        GoodputPlanInput pinned = in;
        pinned.regrow_options = {false};
        const std::optional<GoodputPlanCandidate> off =
            tryBestGoodputPlan(pinned);
        const std::optional<GoodputPlanCandidate> on =
            tryBestGoodputPlan(in);
        if (!off || !on) {
            rg.row({TextTable::num(ngpu), "infeasible", "-", "-", "-", "-"});
            continue;
        }
        const GoodputSweepPoint &coff = off->best();
        const GoodputSweepPoint &con = on->best();
        const bool replan = !(on->analytic.par == off->analytic.par);
        const double margin = con.goodput_tflops_per_gpu -
                              coff.goodput_tflops_per_gpu;
        if (ngpu == 16384)
            margin_16k = margin;
        rg.row({TextTable::num(ngpu),
                TextTable::num(coff.goodput_tflops_per_gpu, 1),
                policyName(coff.policy),
                TextTable::num(con.goodput_tflops_per_gpu, 1),
                policyName(con.policy),
                replan ? "NEW WINNER"
                       : (con.policy.allow_regrow
                              ? "+" + TextTable::num(margin, 1) +
                                    " TFLOPs/GPU margin"
                              : "regrow not picked")});
    }
    rg.print();
    bench::compare("16K worn-fleet margin from the regrow axis "
                   "(TFLOPs/GPU)",
                   5.0, margin_16k);

    // --- Hierarchical-tier + partial-restart axes under GPU-dominated ---
    // wear: re-rank with the checkpoint-tier cadence axis ({global-only,
    // every 4th, every 16th}) and partial restart swept, against the
    // winner with both pinned off. The tiered cells mirror into DP-peer
    // HBM at every boundary, so Young-Daly contracts their interval to a
    // few steps and a GpuFatal costs a peer-mirror read instead of a
    // fleet-wide filesystem restore. The wear is GpuFatal-only (MTBF / 6,
    // host crashes at the stock rate): a HostCrash destroys the local
    // copies and rolls back to the last *global* write, so host-heavy
    // fleets favor a denser global cadence — the axis exists precisely
    // so the planner prices that trade per fleet.
    TextTable hr("Hierarchical-tier axis impact, GPU-dominated wear "
                 "(winning cell, global-only vs tiers+partial swept)");
    hr.header({"GPUs", "goodput/GPU (global-only)",
               "goodput/GPU (tiers swept)", "policy (tiers swept)",
               "tiers", "impact"});
    double hier_margin_16k = 0.0;
    for (const std::int64_t ngpu : {4096, 16384}) {
        GoodputPlanInput in;
        in.base.cluster = ClusterSpec::llama3Production(ngpu);
        in.base.cluster.node.gpu.fatal_mtbf_hours /= 6.0;
        in.base.global_batch_tokens = ngpu * 1024;
        in.fault_seed = 54 + static_cast<std::uint64_t>(ngpu);
        // Trimmed policy axes: one elastic pool (sized so the swap path
        // stays live under the wear) and async snapshots; the study
        // isolates the two new axes.
        in.spare_pool_options = {8};
        in.checkpoint_mode_options = {CheckpointMode::Async};
        in.dp_shrink_options = {false};
        in.regrow_options = {false};
        in.hier_global_every_options = {0, 4, 16};
        in.horizon_steps = 9000;
        in.repairs.gpu_repair_mean_hours = 0.5;
        in.repairs.host_repair_mean_hours = 0.75;
        GoodputPlanInput pinned = in;
        pinLegacyAxes(pinned);
        const std::optional<GoodputPlanCandidate> off =
            tryBestGoodputPlan(pinned);
        const std::optional<GoodputPlanCandidate> on =
            tryBestGoodputPlan(in);
        if (!off || !on) {
            hr.row({TextTable::num(ngpu), "infeasible", "-", "-", "-", "-"});
            continue;
        }
        const GoodputSweepPoint &coff = off->best();
        const GoodputSweepPoint &con = on->best();
        const double margin = con.goodput_tflops_per_gpu -
                              coff.goodput_tflops_per_gpu;
        if (ngpu == 16384)
            hier_margin_16k = margin;
        hr.row({TextTable::num(ngpu),
                TextTable::num(coff.goodput_tflops_per_gpu, 1),
                TextTable::num(con.goodput_tflops_per_gpu, 1),
                policyName(con.policy),
                con.hier_global_every > 0
                    ? "global every " +
                          TextTable::num(con.hier_global_every) + "th"
                    : "global-only",
                con.hier_global_every > 0
                    ? "+" + TextTable::num(margin, 1) + " TFLOPs/GPU"
                    : "tiers not picked"});
    }
    hr.print();
    bench::compare("16K GPU-wear margin from the tier axes "
                   "(TFLOPs/GPU)",
                   1.5, hier_margin_16k);

    // --- Spare-placement axis on a worn fleet: central pool vs ---
    // per-pod reserves under common random numbers. A central pool
    // parks every spare in a dedicated pod, so every swap is cross-pod:
    // priced over the oversubscribed spine, and the replacement rank
    // runs displaced (its DP collectives cross the spine every step)
    // until a repair lets it migrate home. Per-pod reserves spread the
    // same number of hosts so swaps stay pod-local — same parked
    // capacity, no displacement tax.
    TextTable pl("Spare-placement axis, worn fleet (fatal MTBF / 3, "
                 "6-host pool, migration on, CRN)");
    pl.header({"GPUs", "goodput/GPU (central)", "x-pod", "migrations",
               "goodput/GPU (per-pod)", "x-pod", "margin"});
    double placement_margin_16k = 0.0;
    for (const std::int64_t ngpu : {8192, 16384}) {
        GoodputPlanInput in;
        in.base.cluster = ClusterSpec::llama3Production(ngpu);
        in.base.cluster.node.gpu.fatal_mtbf_hours /= 3.0;
        in.base.cluster.node.host_mtbf_hours /= 3.0;
        in.base.global_batch_tokens = ngpu * 1024;
        in.fault_seed = 54 + static_cast<std::uint64_t>(ngpu);
        pinLegacyAxes(in);
        in.spare_pool_options = {6};
        in.checkpoint_mode_options = {CheckpointMode::Async};
        in.dp_shrink_options = {false};
        in.regrow_options = {false};
        in.horizon_steps = 9000;
        in.repairs.gpu_repair_mean_hours = 0.5;
        in.repairs.host_repair_mean_hours = 0.75;
        in.placement_migration = true;
        GoodputPlanInput central = in;
        central.placement_options = {SparePlacementPolicy::CentralPool};
        GoodputPlanInput perpod = in;
        perpod.placement_options = {SparePlacementPolicy::PerPodReserve};
        const std::optional<GoodputPlanCandidate> c =
            tryBestGoodputPlan(central);
        const std::optional<GoodputPlanCandidate> p =
            tryBestGoodputPlan(perpod);
        if (!c || !p) {
            pl.row({TextTable::num(ngpu), "infeasible", "-", "-", "-",
                    "-", "-"});
            continue;
        }
        const GoodputSweepPoint &cc = c->best();
        const GoodputSweepPoint &cp = p->best();
        const double margin = cp.goodput_tflops_per_gpu -
                              cc.goodput_tflops_per_gpu;
        if (ngpu == 16384)
            placement_margin_16k = margin;
        pl.row({TextTable::num(ngpu),
                TextTable::num(cc.goodput_tflops_per_gpu, 1),
                TextTable::num(cc.report.cross_pod_swaps),
                TextTable::num(cc.report.placement_migrations),
                TextTable::num(cp.goodput_tflops_per_gpu, 1),
                TextTable::num(cp.report.cross_pod_swaps),
                "+" + TextTable::num(margin, 2) + " TFLOPs/GPU"});
    }
    pl.print();
    bench::compare("16K worn-fleet margin from per-pod spare reserves "
                   "(TFLOPs/GPU)",
                   39.2, placement_margin_16k);

    std::puts(
        "  The analytic ranking prices a fault-free step; the goodput\n"
        "  ranking additionally charges rollback, re-init, restore, and\n"
        "  warmup per fault plus the parked capacity of spare hosts.\n"
        "  Those charges are absolute, so candidates inside the planner's\n"
        "  15% near-tie window can reorder: a slightly slower plan with a\n"
        "  smaller restart blast radius or cheaper checkpoints wins on\n"
        "  what the cluster actually delivers.");
    return 0;
}
