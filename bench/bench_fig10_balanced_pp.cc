/**
 * @file
 * Reproduces paper Figure 10: balanced vs imbalanced pipeline
 * parallelism. The 128K vocabulary puts a huge embedding on the first PP
 * rank and a huge output head on the last; removing one transformer layer
 * from each end (Section 3.1.2) rebalances memory and compute.
 *
 * Paper shape: (a) without balance, per-rank peak memory spans ~5 GB with
 * rank 0 worst; balancing flattens it. (b) balanced PP improves TFLOPs by
 * ~6.5%, and by ~17.5% once the freed memory lets activation
 * recomputation be turned off.
 */

#include "bench_util.h"

#include "llm4d/sim/train_sim.h"

using namespace llm4d;

namespace {

TrainJobConfig
job(bool balanced, ActivationMode act)
{
    // Scaled-down 405B on 8 PP ranks: 40 uniform layers vs the
    // 38-layer balanced co-design (one layer dropped from the first and
    // last stages, mirroring 128 -> 126 in production).
    TrainJobConfig cfg;
    cfg.model = balanced ? ModelConfig::scaledDown405b(38)
                         : ModelConfig::scaledDown405b(40);
    cfg.balanced_layers = balanced;
    cfg.par = ParallelismConfig{8, 1, 8, 2}; // 128 GPUs, 8 PP ranks
    cfg.cluster = ClusterSpec::llama3Production(128);
    cfg.seq = 8192;
    cfg.global_batch_tokens = 32 * cfg.seq; // bs = 16 = 2*pp
    cfg.act = act;
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Figure 10 — balanced pipeline parallelism",
                  "balance cuts peak memory ~5GB and adds ~6.5% TFLOPs; "
                  "without recompute, +17.5%");

    const TrainStepReport none =
        TrainSim(job(false, ActivationMode::Full)).run();
    const TrainStepReport none_rec =
        TrainSim(job(false, ActivationMode::Selective)).run();
    const TrainStepReport balanced =
        TrainSim(job(true, ActivationMode::Full)).run();

    TextTable per_rank("Figure 10a (reproduced): peak memory per PP rank");
    per_rank.header({"pp rank", "no balance GiB", "balance GiB"});
    for (std::size_t r = 0; r < none.pp_rank_memory.size(); ++r) {
        per_rank.row(
            {TextTable::num(static_cast<std::int64_t>(r)),
             TextTable::num(none.pp_rank_memory[r].totalGib(), 1),
             TextTable::num(balanced.pp_rank_memory[r].totalGib(), 1)});
    }
    per_rank.print();

    TextTable thr("Figure 10b (reproduced): training throughput");
    thr.header({"configuration", "TFLOPs/GPU", "max mem GiB", "bubble"});
    thr.row({"no balance + selective recompute",
             TextTable::num(none_rec.tflops_per_gpu, 1),
             TextTable::num(none_rec.maxMemoryGib(), 1),
             TextTable::pct(none_rec.bubble_ratio)});
    thr.row({"no balance", TextTable::num(none.tflops_per_gpu, 1),
             TextTable::num(none.maxMemoryGib(), 1),
             TextTable::pct(none.bubble_ratio)});
    thr.row({"balance", TextTable::num(balanced.tflops_per_gpu, 1),
             TextTable::num(balanced.maxMemoryGib(), 1),
             TextTable::pct(balanced.bubble_ratio)});
    thr.print();

    bench::compare("memory saved by balance (GB)", 5.0,
                   none.maxMemoryGib() - balanced.maxMemoryGib());
    bench::compare("TFLOPs gain, balance vs none (%)", 6.5,
                   (balanced.tflops_per_gpu / none.tflops_per_gpu - 1.0) *
                       100.0);
    bench::compare("TFLOPs gain vs recompute baseline (%)", 17.5,
                   (balanced.tflops_per_gpu / none_rec.tflops_per_gpu -
                    1.0) *
                       100.0);
    return 0;
}
