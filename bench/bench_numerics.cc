/**
 * @file
 * Reproduces the Section 6.2 numerical methodology as quantitative
 * experiments: matched-order bitwise verification across DP/PP
 * accumulation structures, and FP32-vs-BF16 gradient accumulation drift
 * as micro-batch counts grow.
 */

#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "llm4d/debug/numerics.h"
#include "llm4d/simcore/rng.h"
#include "llm4d/tensor/reduce.h"

using namespace llm4d;

int
main()
{
    bench::banner("Section 6.2 — numerical debugging experiments",
                  "matched order => bitwise equal; FP32 accumulation "
                  "closes the BF16 gap");

    // --- Experiment 1: order effects vs bugs across DP sizes. ---
    TextTable t1("Matched-order verification across DP group sizes");
    t1.header({"dp", "ring vs rank-order: bit diffs", "max |diff|",
               "ring vs matched: bitwise equal"});
    Rng rng(1);
    for (std::size_t dp : {2, 4, 8, 16, 64}) {
        const std::size_t n = 16384;
        std::vector<std::vector<float>> shards(dp, std::vector<float>(n));
        for (auto &s : shards)
            for (auto &x : s)
                x = static_cast<float>(rng.normal());
        const auto ring = ringAllReduce(shards);
        const auto rank_order = rankOrderReduce(shards);
        const auto matched = ringAllReduce(shards);
        std::size_t diffs = 0;
        double max_diff = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (std::memcmp(&ring[i], &rank_order[i], 4) != 0) {
                ++diffs;
                max_diff = std::max(
                    max_diff,
                    std::abs(double{ring[i]} - rank_order[i]));
            }
        }
        const auto check = checkMatchedOrder(ring, matched);
        t1.row({TextTable::num(static_cast<std::int64_t>(dp)),
                TextTable::num(static_cast<std::int64_t>(diffs)),
                TextTable::num(max_diff, 8),
                check.bitwise_match ? "yes" : "NO"});
    }
    t1.print();

    // --- Experiment 2: accumulation drift vs micro-batch count. ---
    TextTable t2("Gradient accumulation error vs micro-batch count "
                 "(mean |err| vs FP64)");
    t2.header({"micro-batches", "FP32 accumulator", "BF16 accumulator",
               "BF16/FP32"});
    for (std::size_t mbs : {8, 16, 32, 64, 128, 256}) {
        std::vector<std::vector<float>> parts(mbs,
                                              std::vector<float>(2048));
        Rng grng(100 + mbs);
        for (auto &p : parts)
            for (auto &x : p)
                x = static_cast<float>(grng.normal() * 0.05);
        const auto d32 = measureAccumulationDrift(parts, false);
        const auto d16 = measureAccumulationDrift(parts, true);
        t2.row({TextTable::num(static_cast<std::int64_t>(mbs)),
                TextTable::num(d32.mean_abs_error, 10),
                TextTable::num(d16.mean_abs_error, 7),
                TextTable::num(d16.mean_abs_error /
                                   std::max(1e-18, d32.mean_abs_error),
                               0)});
    }
    t2.print();

    // --- Experiment 3: training-trajectory divergence. ---
    TextTable t3("Parameter drift vs FP64 trajectory after N steps");
    t3.header({"steps", "FP32 accumulation", "BF16 accumulation"});
    for (std::int64_t steps : {10, 50, 200}) {
        const TrajectoryDrift d =
            simulateTrainingDrift(256, steps, 32, 0.05, 9);
        t3.row({TextTable::num(steps), TextTable::num(d.fp32_drift, 9),
                TextTable::num(d.bf16_drift, 7)});
    }
    t3.print();

    std::printf("Conclusion (matches Section 6.2): reorderings are "
                "bit-inequal but benign;\nFP32 accumulation keeps the "
                "trajectory on the reference; BF16 accumulation\ndrifts "
                "and the drift grows with scale.\n");
    return 0;
}
