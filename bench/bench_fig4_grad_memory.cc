/**
 * @file
 * Reproduces paper Figure 4: gradient memory lifetime under combinations
 * of PP schedule and FSDP ZeRO mode.
 *
 *  (a) 1F1B + ZeRO-1: unsharded stage gradients persist until the single
 *      end-of-step reduce-scatter — high plateau, few collectives.
 *  (b) all-forward-all-backward: each stage's backwards are contiguous,
 *      so ZeRO-1 and ZeRO-2 behave the same.
 *  (c) 1F1B + ZeRO-2: reduce-scatter after the last consecutive
 *      micro-batch of every round — sawtooth, more collectives.
 */

#include "bench_util.h"

#include "llm4d/pp/grad_memory.h"

using namespace llm4d;

namespace {

constexpr double kGradGiB = 1.6;  // unsharded FP32 grads of one stage
constexpr double kActGiB = 0.35;  // activations of one (stage, mb)
constexpr double kFrac = 1.0 / 64.0;

void
show(const char *label, const Schedule &sched, ZeroMode mode)
{
    const ExecResult exec =
        executeSchedule(sched, ExecConfig::uniform(9e-3, 18e-3, 1e-3));
    const GradMemoryParams params{kGradGiB, kFrac, kActGiB, mode};
    const MemorySeries series =
        gradMemoryTimeline(sched, exec, params, /*rank=*/0);

    std::printf("\n--- %s ---\n", label);
    std::printf("  peak grad+act memory: %.2f GiB, reduce-scatters: %lld\n",
                series.peak, static_cast<long long>(series.reduce_scatters));
    // Render a coarse sparkline of the timeline (16 buckets).
    std::printf("  timeline: ");
    for (int b = 0; b < 32; ++b) {
        const Time t = exec.makespan * b / 32;
        const double v = series.at(t) / series.peak;
        const char *glyph = v < 0.125 ? "_"
                            : v < 0.375 ? "."
                            : v < 0.625 ? "-"
                            : v < 0.875 ? "=" : "#";
        std::printf("%s", glyph);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 4 — gradient memory lifetime under PP x FSDP",
                  "ZeRO-1 plateaus high with 1 RS/stage; ZeRO-2 sawtooths "
                  "with 1 RS/stage/round; AFAB equalizes the modes");

    const ScheduleParams p{4, 4, 16, 4};
    const Schedule f1b1 = buildFlexible(p);
    const Schedule afab = buildAllForwardAllBackward(
        ScheduleParams{4, 4, 16, 16});

    show("(a) 1F1B + ZeRO-1", f1b1, ZeroMode::Zero1);
    show("(b) all-F-all-B + ZeRO-1", afab, ZeroMode::Zero1);
    show("(b) all-F-all-B + ZeRO-2", afab, ZeroMode::Zero2);
    show("(c) 1F1B + ZeRO-2", f1b1, ZeroMode::Zero2);

    // Quantitative shape checks.
    const ExecResult exec =
        executeSchedule(f1b1, ExecConfig::uniform(9e-3, 18e-3, 1e-3));
    const double peak1 =
        gradMemoryTimeline(f1b1, exec,
                           GradMemoryParams{kGradGiB, kFrac, kActGiB,
                                            ZeroMode::Zero1},
                           0)
            .peak;
    const auto z2 = gradMemoryTimeline(
        f1b1, exec,
        GradMemoryParams{kGradGiB, kFrac, kActGiB, ZeroMode::Zero2}, 0);
    std::printf("\n");
    bench::compare("ZeRO-2 peak / ZeRO-1 peak (<1 expected)", 0.7,
                   z2.peak / peak1);
    bench::compare("ZeRO-2 reduce-scatters (stages x rounds)", 16.0,
                   static_cast<double>(z2.reduce_scatters));
    return 0;
}
