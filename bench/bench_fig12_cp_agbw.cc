/**
 * @file
 * Reproduces paper Figure 12: achieved inter-GPU bandwidth of the CP KV
 * all-gather versus sequence length, for cp in {2, 4}, causal and
 * block-causal masks.
 *
 * Paper shape: achieved bandwidth climbs with sequence length (latency
 * amortizes) toward ~300 GB/s on NVLink, and is essentially identical
 * between causal and block-causal masks — the mask changes compute, not
 * communication. That equality is what pins Figure 11's block-causal gap
 * on workload imbalance rather than the network.
 */

#include "bench_util.h"

#include "llm4d/cp/cp_cost.h"

using namespace llm4d;

int
main()
{
    bench::banner("Figure 12 — achieved CP all-gather bandwidth",
                  "rises with seq toward ~300 GB/s; causal == block-causal");

    const ClusterSpec spec = ClusterSpec::llama3Production(8);
    const Topology topo(spec);
    const CollectiveModel coll(topo);

    TextTable table("Figure 12 (reproduced): achieved AG bandwidth (GB/s)");
    table.header({"seq", "cp2 causal", "cp2 block", "cp4 causal",
                  "cp4 block"});
    double peak_bw = 0.0;
    for (std::int64_t seq : {4096, 8192, 16384, 32768, 65536, 131072}) {
        std::vector<std::string> cells{TextTable::num(seq)};
        for (std::int64_t cp : {2, 4}) {
            std::vector<std::int64_t> ranks;
            for (std::int64_t r = 0; r < cp; ++r)
                ranks.push_back(r);
            const CpCostModel model(spec.node.gpu, AttnGeometry{}, coll,
                                    ranks);
            // Communication is mask-independent: both columns read the
            // same model quantity; print twice to mirror the figure.
            const double bw = model.achievedAllGatherBandwidth(seq);
            cells.push_back(TextTable::num(bw, 1));
            cells.push_back(TextTable::num(bw, 1));
            peak_bw = std::max(peak_bw, bw);
        }
        table.row(cells);
    }
    table.print();

    bench::compare("peak achieved AG bandwidth (GB/s)", 300.0, peak_bw);
    std::printf("note: causal and block-causal columns are identical by "
                "construction —\nthe all-gather moves the same KV bytes "
                "regardless of the attention mask,\nmatching the paper's "
                "measurement.\n");
    return 0;
}
