/**
 * @file
 * Reproduces the paper's Section 7.3 end-to-end results: 405B training on
 * 16,384 H100s at 400 TFLOPs/GPU (8K sequence, 3D parallelism) and 380
 * TFLOPs/GPU (131K sequence, 4D with CP), with pipeline bubble ratios of
 * ~5% at bs = 2*pp and ~12% at bs = pp.
 */

#include "bench_util.h"

#include "llm4d/fsdp/fsdp.h"
#include "llm4d/sim/train_sim.h"

using namespace llm4d;

namespace {

TrainStepReport
run(TrainJobConfig cfg)
{
    // Apply the Section 3.1.3 schedule/ZeRO rule automatically.
    TrainSim probe(cfg);
    const PpFsdpChoice combo =
        choosePpFsdpCombo(probe.batchPerDpGroup(), cfg.par.pp);
    cfg.zero = combo.zero;
    cfg.schedule = combo.schedule;
    return TrainSim(cfg).run();
}

} // namespace

int
main()
{
    bench::banner("Section 7.3 — end-to-end 405B throughput on 16K GPUs",
                  "400 TFLOPs/GPU @8K (3D), 380 @131K (4D); bubble 5% at "
                  "bs=2pp, 12% at bs=pp");

    TrainJobConfig short_ctx; // Table 2 8K row
    const TrainStepReport rep8k = run(short_ctx);

    TrainJobConfig long_ctx;
    long_ctx.par = ParallelismConfig{8, 16, 16, 8};
    long_ctx.seq = 131072;
    const TrainStepReport rep131k = run(long_ctx);

    TextTable table("End-to-end (reproduced)");
    table.header({"phase", "TFLOPs/GPU", "MFU", "bubble", "step s",
                  "mem GiB", "exposed tp s", "exposed cp s",
                  "exposed fsdp s"});
    table.row({"8K / 3D", TextTable::num(rep8k.tflops_per_gpu, 0),
               TextTable::pct(rep8k.mfu), TextTable::pct(rep8k.bubble_ratio),
               TextTable::num(rep8k.step_seconds, 2),
               TextTable::num(rep8k.maxMemoryGib(), 1),
               TextTable::num(rep8k.exposed_tp_seconds, 2),
               TextTable::num(rep8k.exposed_cp_seconds, 2),
               TextTable::num(rep8k.exposed_fsdp_seconds, 2)});
    table.row({"131K / 4D", TextTable::num(rep131k.tflops_per_gpu, 0),
               TextTable::pct(rep131k.mfu),
               TextTable::pct(rep131k.bubble_ratio),
               TextTable::num(rep131k.step_seconds, 2),
               TextTable::num(rep131k.maxMemoryGib(), 1),
               TextTable::num(rep131k.exposed_tp_seconds, 2),
               TextTable::num(rep131k.exposed_cp_seconds, 2),
               TextTable::num(rep131k.exposed_fsdp_seconds, 2)});
    table.print();

    bench::compare("TFLOPs/GPU @ 8K", 400.0, rep8k.tflops_per_gpu);
    bench::compare("TFLOPs/GPU @ 131K", 380.0, rep131k.tflops_per_gpu);

    // Bubble-ratio study (Section 7.3.1) with ZeRO-1 + flexible PP.
    TrainJobConfig bs_pp; // bs = 16 = pp
    TrainJobConfig bs_2pp = bs_pp;
    bs_2pp.global_batch_tokens *= 2; // bs = 32 = 2*pp
    const TrainStepReport r1 = TrainSim(bs_pp).run();
    const TrainStepReport r2 = TrainSim(bs_2pp).run();
    std::printf("\n");
    bench::compare("bubble ratio at bs = pp (%)", 12.0,
                   r1.bubble_ratio * 100.0);
    bench::compare("bubble ratio at bs = 2*pp (%)", 5.0,
                   r2.bubble_ratio * 100.0);
    bench::compare("bubble ratio, bs=pp over bs=2pp", 12.0 / 5.0,
                   r1.bubble_ratio / r2.bubble_ratio);
    return 0;
}
