/**
 * @file
 * Reproduces paper Figure 13: relative HFU of all-gather CP attention
 * (CP Attn) versus TransformerEngine's ring attention (TE Attn), full
 * causal mask, H100 with HBM3, cp in {2, 4}.
 *
 * Paper shape: both exceed 95% relative HFU past 64K; at cp=4 and short
 * sequences (4K-8K) ring attention fragments into O(cp) small kernels
 * plus partial-result merges and loses by double digits (paper: up to
 * 13.53%); at cp=2 the two are close, with TE slightly ahead in the
 * paper's measurement.
 */

#include "bench_util.h"

#include "llm4d/cp/cp_cost.h"

using namespace llm4d;

int
main()
{
    bench::banner("Figure 13 — all-gather CP vs ring (TE) attention",
                  "CP wins at cp=4 short seq (paper: up to +13.53%); both "
                  ">95% at 64K+");

    const ClusterSpec spec = ClusterSpec::llama3Production(8); // HBM3
    const Topology topo(spec);
    const CollectiveModel coll(topo);

    TextTable table("Figure 13 (reproduced): relative HFU (%), causal");
    table.header({"seq", "cp2 CP", "cp2 TE", "cp4 CP", "cp4 TE",
                  "cp4 CP advantage"});
    double best_advantage = 0.0;
    for (std::int64_t seq : {4096, 8192, 16384, 32768, 65536, 131072}) {
        std::vector<std::string> cells{TextTable::num(seq)};
        double adv = 0.0;
        for (std::int64_t cp : {2, 4}) {
            std::vector<std::int64_t> ranks;
            for (std::int64_t r = 0; r < cp; ++r)
                ranks.push_back(r);
            const CpCostModel model(spec.node.gpu, AttnGeometry{}, coll,
                                    ranks);
            const DocMask causal = DocMask::causal(seq);
            const double hfu_cp =
                model.relativeHfu(causal, model.allGatherForward(causal));
            const double hfu_te =
                model.relativeHfu(causal, model.ringForward(causal));
            cells.push_back(TextTable::num(hfu_cp * 100.0, 1));
            cells.push_back(TextTable::num(hfu_te * 100.0, 1));
            if (cp == 4)
                adv = (hfu_cp - hfu_te) * 100.0;
        }
        cells.push_back(TextTable::num(adv, 1) + " pts");
        table.row(cells);
        if (seq <= 8192)
            best_advantage = std::max(best_advantage, adv);
    }
    table.print();

    bench::compare("max cp4 CP-over-TE advantage at 4-8K (HFU pts)",
                   13.53, best_advantage);
    std::printf("note: our analytic ring model keeps TE within a few "
                "points of CP at cp=2\n(paper shows TE marginally ahead "
                "there); the cp=4 fragmentation penalty and\nthe 64K+ "
                "convergence match the paper.\n");
    return 0;
}
