file(REMOVE_RECURSE
  "CMakeFiles/multimodal_training.dir/multimodal_training.cpp.o"
  "CMakeFiles/multimodal_training.dir/multimodal_training.cpp.o.d"
  "multimodal_training"
  "multimodal_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimodal_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
