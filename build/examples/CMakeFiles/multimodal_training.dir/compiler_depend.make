# Empty compiler generated dependencies file for multimodal_training.
# This may be replaced when dependencies are built.
