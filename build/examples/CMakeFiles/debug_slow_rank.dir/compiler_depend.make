# Empty compiler generated dependencies file for debug_slow_rank.
# This may be replaced when dependencies are built.
