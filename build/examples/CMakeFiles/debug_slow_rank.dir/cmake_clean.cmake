file(REMOVE_RECURSE
  "CMakeFiles/debug_slow_rank.dir/debug_slow_rank.cpp.o"
  "CMakeFiles/debug_slow_rank.dir/debug_slow_rank.cpp.o.d"
  "debug_slow_rank"
  "debug_slow_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_slow_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
