# Empty dependencies file for numerics_debugging.
# This may be replaced when dependencies are built.
