file(REMOVE_RECURSE
  "CMakeFiles/numerics_debugging.dir/numerics_debugging.cpp.o"
  "CMakeFiles/numerics_debugging.dir/numerics_debugging.cpp.o.d"
  "numerics_debugging"
  "numerics_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numerics_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
