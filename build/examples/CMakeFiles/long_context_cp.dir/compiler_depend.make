# Empty compiler generated dependencies file for long_context_cp.
# This may be replaced when dependencies are built.
