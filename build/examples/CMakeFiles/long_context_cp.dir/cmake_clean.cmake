file(REMOVE_RECURSE
  "CMakeFiles/long_context_cp.dir/long_context_cp.cpp.o"
  "CMakeFiles/long_context_cp.dir/long_context_cp.cpp.o.d"
  "long_context_cp"
  "long_context_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_context_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
