
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/long_context_cp.cpp" "examples/CMakeFiles/long_context_cp.dir/long_context_cp.cpp.o" "gcc" "examples/CMakeFiles/long_context_cp.dir/long_context_cp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/plan/CMakeFiles/llm4d_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/sim/CMakeFiles/llm4d_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/fsdp/CMakeFiles/llm4d_fsdp.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/pp/CMakeFiles/llm4d_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/model/CMakeFiles/llm4d_model.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/debug/CMakeFiles/llm4d_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/parallel/CMakeFiles/llm4d_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/data/CMakeFiles/llm4d_data.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/cp/CMakeFiles/llm4d_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/net/CMakeFiles/llm4d_net.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/hw/CMakeFiles/llm4d_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
