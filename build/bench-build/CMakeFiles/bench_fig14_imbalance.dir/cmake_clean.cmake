file(REMOVE_RECURSE
  "../bench/bench_fig14_imbalance"
  "../bench/bench_fig14_imbalance.pdb"
  "CMakeFiles/bench_fig14_imbalance.dir/bench_fig14_imbalance.cc.o"
  "CMakeFiles/bench_fig14_imbalance.dir/bench_fig14_imbalance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
