# Empty dependencies file for bench_fig14_imbalance.
# This may be replaced when dependencies are built.
