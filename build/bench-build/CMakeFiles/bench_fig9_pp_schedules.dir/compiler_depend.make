# Empty compiler generated dependencies file for bench_fig9_pp_schedules.
# This may be replaced when dependencies are built.
