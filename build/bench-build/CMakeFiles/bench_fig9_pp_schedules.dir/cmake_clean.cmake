file(REMOVE_RECURSE
  "../bench/bench_fig9_pp_schedules"
  "../bench/bench_fig9_pp_schedules.pdb"
  "CMakeFiles/bench_fig9_pp_schedules.dir/bench_fig9_pp_schedules.cc.o"
  "CMakeFiles/bench_fig9_pp_schedules.dir/bench_fig9_pp_schedules.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pp_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
