# Empty compiler generated dependencies file for bench_fig11_cp_hfu.
# This may be replaced when dependencies are built.
