file(REMOVE_RECURSE
  "../bench/bench_fig11_cp_hfu"
  "../bench/bench_fig11_cp_hfu.pdb"
  "CMakeFiles/bench_fig11_cp_hfu.dir/bench_fig11_cp_hfu.cc.o"
  "CMakeFiles/bench_fig11_cp_hfu.dir/bench_fig11_cp_hfu.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cp_hfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
