# Empty dependencies file for bench_sec52_ordering.
# This may be replaced when dependencies are built.
