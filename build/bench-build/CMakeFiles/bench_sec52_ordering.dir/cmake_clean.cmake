file(REMOVE_RECURSE
  "../bench/bench_sec52_ordering"
  "../bench/bench_sec52_ordering.pdb"
  "CMakeFiles/bench_sec52_ordering.dir/bench_sec52_ordering.cc.o"
  "CMakeFiles/bench_sec52_ordering.dir/bench_sec52_ordering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
