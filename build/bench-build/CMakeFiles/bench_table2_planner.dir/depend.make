# Empty dependencies file for bench_table2_planner.
# This may be replaced when dependencies are built.
