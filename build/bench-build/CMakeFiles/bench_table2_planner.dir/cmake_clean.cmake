file(REMOVE_RECURSE
  "../bench/bench_table2_planner"
  "../bench/bench_table2_planner.pdb"
  "CMakeFiles/bench_table2_planner.dir/bench_table2_planner.cc.o"
  "CMakeFiles/bench_table2_planner.dir/bench_table2_planner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
