# Empty dependencies file for bench_fig13_cp_vs_ring.
# This may be replaced when dependencies are built.
