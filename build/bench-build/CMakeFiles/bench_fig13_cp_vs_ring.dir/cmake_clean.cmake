file(REMOVE_RECURSE
  "../bench/bench_fig13_cp_vs_ring"
  "../bench/bench_fig13_cp_vs_ring.pdb"
  "CMakeFiles/bench_fig13_cp_vs_ring.dir/bench_fig13_cp_vs_ring.cc.o"
  "CMakeFiles/bench_fig13_cp_vs_ring.dir/bench_fig13_cp_vs_ring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_cp_vs_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
