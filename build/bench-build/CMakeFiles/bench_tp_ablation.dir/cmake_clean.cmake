file(REMOVE_RECURSE
  "../bench/bench_tp_ablation"
  "../bench/bench_tp_ablation.pdb"
  "CMakeFiles/bench_tp_ablation.dir/bench_tp_ablation.cc.o"
  "CMakeFiles/bench_tp_ablation.dir/bench_tp_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tp_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
