# Empty dependencies file for bench_tp_ablation.
# This may be replaced when dependencies are built.
