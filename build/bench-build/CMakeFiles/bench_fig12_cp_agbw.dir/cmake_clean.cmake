file(REMOVE_RECURSE
  "../bench/bench_fig12_cp_agbw"
  "../bench/bench_fig12_cp_agbw.pdb"
  "CMakeFiles/bench_fig12_cp_agbw.dir/bench_fig12_cp_agbw.cc.o"
  "CMakeFiles/bench_fig12_cp_agbw.dir/bench_fig12_cp_agbw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cp_agbw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
