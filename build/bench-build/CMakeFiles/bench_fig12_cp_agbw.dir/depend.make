# Empty dependencies file for bench_fig12_cp_agbw.
# This may be replaced when dependencies are built.
