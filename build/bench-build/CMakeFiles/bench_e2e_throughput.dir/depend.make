# Empty dependencies file for bench_e2e_throughput.
# This may be replaced when dependencies are built.
