file(REMOVE_RECURSE
  "../bench/bench_e2e_throughput"
  "../bench/bench_e2e_throughput.pdb"
  "CMakeFiles/bench_e2e_throughput.dir/bench_e2e_throughput.cc.o"
  "CMakeFiles/bench_e2e_throughput.dir/bench_e2e_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
