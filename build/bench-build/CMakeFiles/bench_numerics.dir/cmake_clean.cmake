file(REMOVE_RECURSE
  "../bench/bench_numerics"
  "../bench/bench_numerics.pdb"
  "CMakeFiles/bench_numerics.dir/bench_numerics.cc.o"
  "CMakeFiles/bench_numerics.dir/bench_numerics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
