# Empty dependencies file for bench_numerics.
# This may be replaced when dependencies are built.
