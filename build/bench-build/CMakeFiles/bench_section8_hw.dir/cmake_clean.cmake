file(REMOVE_RECURSE
  "../bench/bench_section8_hw"
  "../bench/bench_section8_hw.pdb"
  "CMakeFiles/bench_section8_hw.dir/bench_section8_hw.cc.o"
  "CMakeFiles/bench_section8_hw.dir/bench_section8_hw.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section8_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
