# Empty dependencies file for bench_section8_hw.
# This may be replaced when dependencies are built.
