# Empty compiler generated dependencies file for bench_multimodal_encoder.
# This may be replaced when dependencies are built.
