file(REMOVE_RECURSE
  "../bench/bench_multimodal_encoder"
  "../bench/bench_multimodal_encoder.pdb"
  "CMakeFiles/bench_multimodal_encoder.dir/bench_multimodal_encoder.cc.o"
  "CMakeFiles/bench_multimodal_encoder.dir/bench_multimodal_encoder.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multimodal_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
