file(REMOVE_RECURSE
  "../bench/bench_fig10_balanced_pp"
  "../bench/bench_fig10_balanced_pp.pdb"
  "CMakeFiles/bench_fig10_balanced_pp.dir/bench_fig10_balanced_pp.cc.o"
  "CMakeFiles/bench_fig10_balanced_pp.dir/bench_fig10_balanced_pp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_balanced_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
