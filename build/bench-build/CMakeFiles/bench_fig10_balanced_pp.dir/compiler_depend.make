# Empty compiler generated dependencies file for bench_fig10_balanced_pp.
# This may be replaced when dependencies are built.
