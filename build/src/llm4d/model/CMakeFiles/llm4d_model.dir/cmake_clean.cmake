file(REMOVE_RECURSE
  "CMakeFiles/llm4d_model.dir/layer_cost.cc.o"
  "CMakeFiles/llm4d_model.dir/layer_cost.cc.o.d"
  "CMakeFiles/llm4d_model.dir/memory_model.cc.o"
  "CMakeFiles/llm4d_model.dir/memory_model.cc.o.d"
  "CMakeFiles/llm4d_model.dir/model_config.cc.o"
  "CMakeFiles/llm4d_model.dir/model_config.cc.o.d"
  "libllm4d_model.a"
  "libllm4d_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
