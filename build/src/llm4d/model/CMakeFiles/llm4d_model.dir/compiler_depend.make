# Empty compiler generated dependencies file for llm4d_model.
# This may be replaced when dependencies are built.
