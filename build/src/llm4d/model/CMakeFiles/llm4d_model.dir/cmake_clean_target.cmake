file(REMOVE_RECURSE
  "libllm4d_model.a"
)
