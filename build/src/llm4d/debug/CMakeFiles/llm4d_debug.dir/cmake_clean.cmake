file(REMOVE_RECURSE
  "CMakeFiles/llm4d_debug.dir/mem_snapshot.cc.o"
  "CMakeFiles/llm4d_debug.dir/mem_snapshot.cc.o.d"
  "CMakeFiles/llm4d_debug.dir/numerics.cc.o"
  "CMakeFiles/llm4d_debug.dir/numerics.cc.o.d"
  "CMakeFiles/llm4d_debug.dir/slow_rank.cc.o"
  "CMakeFiles/llm4d_debug.dir/slow_rank.cc.o.d"
  "CMakeFiles/llm4d_debug.dir/trace.cc.o"
  "CMakeFiles/llm4d_debug.dir/trace.cc.o.d"
  "libllm4d_debug.a"
  "libllm4d_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
