file(REMOVE_RECURSE
  "libllm4d_debug.a"
)
