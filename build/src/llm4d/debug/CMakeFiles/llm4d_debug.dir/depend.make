# Empty dependencies file for llm4d_debug.
# This may be replaced when dependencies are built.
