file(REMOVE_RECURSE
  "libllm4d_pp.a"
)
