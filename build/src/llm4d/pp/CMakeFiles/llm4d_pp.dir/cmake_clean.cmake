file(REMOVE_RECURSE
  "CMakeFiles/llm4d_pp.dir/executor.cc.o"
  "CMakeFiles/llm4d_pp.dir/executor.cc.o.d"
  "CMakeFiles/llm4d_pp.dir/grad_memory.cc.o"
  "CMakeFiles/llm4d_pp.dir/grad_memory.cc.o.d"
  "CMakeFiles/llm4d_pp.dir/layer_balance.cc.o"
  "CMakeFiles/llm4d_pp.dir/layer_balance.cc.o.d"
  "CMakeFiles/llm4d_pp.dir/legality.cc.o"
  "CMakeFiles/llm4d_pp.dir/legality.cc.o.d"
  "CMakeFiles/llm4d_pp.dir/nc_advisor.cc.o"
  "CMakeFiles/llm4d_pp.dir/nc_advisor.cc.o.d"
  "CMakeFiles/llm4d_pp.dir/schedule.cc.o"
  "CMakeFiles/llm4d_pp.dir/schedule.cc.o.d"
  "CMakeFiles/llm4d_pp.dir/timeline.cc.o"
  "CMakeFiles/llm4d_pp.dir/timeline.cc.o.d"
  "libllm4d_pp.a"
  "libllm4d_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
