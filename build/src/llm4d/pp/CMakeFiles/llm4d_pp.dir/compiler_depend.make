# Empty compiler generated dependencies file for llm4d_pp.
# This may be replaced when dependencies are built.
