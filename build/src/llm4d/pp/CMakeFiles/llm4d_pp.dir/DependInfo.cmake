
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm4d/pp/executor.cc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/executor.cc.o" "gcc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/executor.cc.o.d"
  "/root/repo/src/llm4d/pp/grad_memory.cc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/grad_memory.cc.o" "gcc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/grad_memory.cc.o.d"
  "/root/repo/src/llm4d/pp/layer_balance.cc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/layer_balance.cc.o" "gcc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/layer_balance.cc.o.d"
  "/root/repo/src/llm4d/pp/legality.cc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/legality.cc.o" "gcc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/legality.cc.o.d"
  "/root/repo/src/llm4d/pp/nc_advisor.cc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/nc_advisor.cc.o" "gcc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/nc_advisor.cc.o.d"
  "/root/repo/src/llm4d/pp/schedule.cc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/schedule.cc.o" "gcc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/schedule.cc.o.d"
  "/root/repo/src/llm4d/pp/timeline.cc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/timeline.cc.o" "gcc" "src/llm4d/pp/CMakeFiles/llm4d_pp.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/model/CMakeFiles/llm4d_model.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/hw/CMakeFiles/llm4d_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
