# Empty compiler generated dependencies file for llm4d_sim.
# This may be replaced when dependencies are built.
