file(REMOVE_RECURSE
  "libllm4d_sim.a"
)
