file(REMOVE_RECURSE
  "CMakeFiles/llm4d_sim.dir/multimodal.cc.o"
  "CMakeFiles/llm4d_sim.dir/multimodal.cc.o.d"
  "CMakeFiles/llm4d_sim.dir/train_sim.cc.o"
  "CMakeFiles/llm4d_sim.dir/train_sim.cc.o.d"
  "libllm4d_sim.a"
  "libllm4d_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
