file(REMOVE_RECURSE
  "libllm4d_tensor.a"
)
