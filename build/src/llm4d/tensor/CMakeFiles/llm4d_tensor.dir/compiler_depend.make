# Empty compiler generated dependencies file for llm4d_tensor.
# This may be replaced when dependencies are built.
