
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm4d/tensor/attention.cc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/attention.cc.o" "gcc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/attention.cc.o.d"
  "/root/repo/src/llm4d/tensor/doc_mask.cc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/doc_mask.cc.o" "gcc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/doc_mask.cc.o.d"
  "/root/repo/src/llm4d/tensor/gemm.cc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/gemm.cc.o" "gcc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/gemm.cc.o.d"
  "/root/repo/src/llm4d/tensor/reduce.cc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/reduce.cc.o" "gcc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/reduce.cc.o.d"
  "/root/repo/src/llm4d/tensor/tensor.cc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/tensor.cc.o" "gcc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/tensor.cc.o.d"
  "/root/repo/src/llm4d/tensor/tp_linear.cc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/tp_linear.cc.o" "gcc" "src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/tp_linear.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
