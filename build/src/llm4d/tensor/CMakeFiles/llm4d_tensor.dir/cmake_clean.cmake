file(REMOVE_RECURSE
  "CMakeFiles/llm4d_tensor.dir/attention.cc.o"
  "CMakeFiles/llm4d_tensor.dir/attention.cc.o.d"
  "CMakeFiles/llm4d_tensor.dir/doc_mask.cc.o"
  "CMakeFiles/llm4d_tensor.dir/doc_mask.cc.o.d"
  "CMakeFiles/llm4d_tensor.dir/gemm.cc.o"
  "CMakeFiles/llm4d_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/llm4d_tensor.dir/reduce.cc.o"
  "CMakeFiles/llm4d_tensor.dir/reduce.cc.o.d"
  "CMakeFiles/llm4d_tensor.dir/tensor.cc.o"
  "CMakeFiles/llm4d_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/llm4d_tensor.dir/tp_linear.cc.o"
  "CMakeFiles/llm4d_tensor.dir/tp_linear.cc.o.d"
  "libllm4d_tensor.a"
  "libllm4d_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
