file(REMOVE_RECURSE
  "CMakeFiles/llm4d_cp.dir/cp_attention.cc.o"
  "CMakeFiles/llm4d_cp.dir/cp_attention.cc.o.d"
  "CMakeFiles/llm4d_cp.dir/cp_cost.cc.o"
  "CMakeFiles/llm4d_cp.dir/cp_cost.cc.o.d"
  "CMakeFiles/llm4d_cp.dir/sharding.cc.o"
  "CMakeFiles/llm4d_cp.dir/sharding.cc.o.d"
  "CMakeFiles/llm4d_cp.dir/workload.cc.o"
  "CMakeFiles/llm4d_cp.dir/workload.cc.o.d"
  "libllm4d_cp.a"
  "libllm4d_cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
