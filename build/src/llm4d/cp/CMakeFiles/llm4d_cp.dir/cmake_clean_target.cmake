file(REMOVE_RECURSE
  "libllm4d_cp.a"
)
