# Empty dependencies file for llm4d_cp.
# This may be replaced when dependencies are built.
