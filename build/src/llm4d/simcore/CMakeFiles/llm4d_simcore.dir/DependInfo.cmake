
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm4d/simcore/common.cc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/common.cc.o" "gcc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/common.cc.o.d"
  "/root/repo/src/llm4d/simcore/engine.cc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/engine.cc.o" "gcc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/engine.cc.o.d"
  "/root/repo/src/llm4d/simcore/rng.cc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/rng.cc.o" "gcc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/rng.cc.o.d"
  "/root/repo/src/llm4d/simcore/stats.cc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/stats.cc.o" "gcc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/stats.cc.o.d"
  "/root/repo/src/llm4d/simcore/table.cc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/table.cc.o" "gcc" "src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
