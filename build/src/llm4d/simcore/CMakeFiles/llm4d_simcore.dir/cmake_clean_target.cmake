file(REMOVE_RECURSE
  "libllm4d_simcore.a"
)
