file(REMOVE_RECURSE
  "CMakeFiles/llm4d_simcore.dir/common.cc.o"
  "CMakeFiles/llm4d_simcore.dir/common.cc.o.d"
  "CMakeFiles/llm4d_simcore.dir/engine.cc.o"
  "CMakeFiles/llm4d_simcore.dir/engine.cc.o.d"
  "CMakeFiles/llm4d_simcore.dir/rng.cc.o"
  "CMakeFiles/llm4d_simcore.dir/rng.cc.o.d"
  "CMakeFiles/llm4d_simcore.dir/stats.cc.o"
  "CMakeFiles/llm4d_simcore.dir/stats.cc.o.d"
  "CMakeFiles/llm4d_simcore.dir/table.cc.o"
  "CMakeFiles/llm4d_simcore.dir/table.cc.o.d"
  "libllm4d_simcore.a"
  "libllm4d_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
