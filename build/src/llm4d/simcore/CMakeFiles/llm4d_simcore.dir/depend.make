# Empty dependencies file for llm4d_simcore.
# This may be replaced when dependencies are built.
