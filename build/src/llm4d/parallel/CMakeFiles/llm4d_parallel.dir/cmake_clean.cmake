file(REMOVE_RECURSE
  "CMakeFiles/llm4d_parallel.dir/parallelism.cc.o"
  "CMakeFiles/llm4d_parallel.dir/parallelism.cc.o.d"
  "libllm4d_parallel.a"
  "libllm4d_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
