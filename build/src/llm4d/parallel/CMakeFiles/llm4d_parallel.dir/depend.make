# Empty dependencies file for llm4d_parallel.
# This may be replaced when dependencies are built.
