file(REMOVE_RECURSE
  "libllm4d_parallel.a"
)
