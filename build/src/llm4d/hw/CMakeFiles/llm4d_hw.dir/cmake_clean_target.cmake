file(REMOVE_RECURSE
  "libllm4d_hw.a"
)
