# Empty dependencies file for llm4d_hw.
# This may be replaced when dependencies are built.
