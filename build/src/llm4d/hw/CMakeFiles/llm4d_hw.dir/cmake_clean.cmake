file(REMOVE_RECURSE
  "CMakeFiles/llm4d_hw.dir/gpu_spec.cc.o"
  "CMakeFiles/llm4d_hw.dir/gpu_spec.cc.o.d"
  "CMakeFiles/llm4d_hw.dir/kernel_model.cc.o"
  "CMakeFiles/llm4d_hw.dir/kernel_model.cc.o.d"
  "CMakeFiles/llm4d_hw.dir/perf_variation.cc.o"
  "CMakeFiles/llm4d_hw.dir/perf_variation.cc.o.d"
  "libllm4d_hw.a"
  "libllm4d_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
