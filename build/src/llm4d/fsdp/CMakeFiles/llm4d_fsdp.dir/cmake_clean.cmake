file(REMOVE_RECURSE
  "CMakeFiles/llm4d_fsdp.dir/fsdp.cc.o"
  "CMakeFiles/llm4d_fsdp.dir/fsdp.cc.o.d"
  "libllm4d_fsdp.a"
  "libllm4d_fsdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_fsdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
