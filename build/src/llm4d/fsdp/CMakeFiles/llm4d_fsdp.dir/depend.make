# Empty dependencies file for llm4d_fsdp.
# This may be replaced when dependencies are built.
