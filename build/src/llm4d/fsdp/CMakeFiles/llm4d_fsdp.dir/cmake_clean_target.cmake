file(REMOVE_RECURSE
  "libllm4d_fsdp.a"
)
