file(REMOVE_RECURSE
  "CMakeFiles/llm4d_plan.dir/planner.cc.o"
  "CMakeFiles/llm4d_plan.dir/planner.cc.o.d"
  "libllm4d_plan.a"
  "libllm4d_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
