# Empty compiler generated dependencies file for llm4d_plan.
# This may be replaced when dependencies are built.
