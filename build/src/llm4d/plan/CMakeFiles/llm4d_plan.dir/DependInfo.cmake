
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm4d/plan/planner.cc" "src/llm4d/plan/CMakeFiles/llm4d_plan.dir/planner.cc.o" "gcc" "src/llm4d/plan/CMakeFiles/llm4d_plan.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/model/CMakeFiles/llm4d_model.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/net/CMakeFiles/llm4d_net.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/parallel/CMakeFiles/llm4d_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/fsdp/CMakeFiles/llm4d_fsdp.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/pp/CMakeFiles/llm4d_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/cp/CMakeFiles/llm4d_cp.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/hw/CMakeFiles/llm4d_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
