file(REMOVE_RECURSE
  "libllm4d_plan.a"
)
