file(REMOVE_RECURSE
  "CMakeFiles/llm4d_data.dir/dataloader.cc.o"
  "CMakeFiles/llm4d_data.dir/dataloader.cc.o.d"
  "libllm4d_data.a"
  "libllm4d_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
