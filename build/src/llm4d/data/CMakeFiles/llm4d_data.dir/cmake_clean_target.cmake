file(REMOVE_RECURSE
  "libllm4d_data.a"
)
