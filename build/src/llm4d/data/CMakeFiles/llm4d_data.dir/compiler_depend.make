# Empty compiler generated dependencies file for llm4d_data.
# This may be replaced when dependencies are built.
