file(REMOVE_RECURSE
  "CMakeFiles/llm4d_net.dir/collective.cc.o"
  "CMakeFiles/llm4d_net.dir/collective.cc.o.d"
  "CMakeFiles/llm4d_net.dir/flow_sim.cc.o"
  "CMakeFiles/llm4d_net.dir/flow_sim.cc.o.d"
  "CMakeFiles/llm4d_net.dir/topology.cc.o"
  "CMakeFiles/llm4d_net.dir/topology.cc.o.d"
  "libllm4d_net.a"
  "libllm4d_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm4d_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
