# Empty compiler generated dependencies file for llm4d_net.
# This may be replaced when dependencies are built.
