file(REMOVE_RECURSE
  "libllm4d_net.a"
)
