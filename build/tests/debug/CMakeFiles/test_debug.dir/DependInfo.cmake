
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/debug/test_debug.cc" "tests/debug/CMakeFiles/test_debug.dir/test_debug.cc.o" "gcc" "tests/debug/CMakeFiles/test_debug.dir/test_debug.cc.o.d"
  "/root/repo/tests/debug/test_trace.cc" "tests/debug/CMakeFiles/test_debug.dir/test_trace.cc.o" "gcc" "tests/debug/CMakeFiles/test_debug.dir/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/debug/CMakeFiles/llm4d_debug.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/parallel/CMakeFiles/llm4d_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
