# CMake generated Testfile for 
# Source directory: /root/repo/tests/debug
# Build directory: /root/repo/build/tests/debug
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/debug/test_debug[1]_include.cmake")
