# CMake generated Testfile for 
# Source directory: /root/repo/tests/pp
# Build directory: /root/repo/build/tests/pp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pp/test_pp[1]_include.cmake")
