
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pp/test_executor.cc" "tests/pp/CMakeFiles/test_pp.dir/test_executor.cc.o" "gcc" "tests/pp/CMakeFiles/test_pp.dir/test_executor.cc.o.d"
  "/root/repo/tests/pp/test_executor_properties.cc" "tests/pp/CMakeFiles/test_pp.dir/test_executor_properties.cc.o" "gcc" "tests/pp/CMakeFiles/test_pp.dir/test_executor_properties.cc.o.d"
  "/root/repo/tests/pp/test_grad_memory.cc" "tests/pp/CMakeFiles/test_pp.dir/test_grad_memory.cc.o" "gcc" "tests/pp/CMakeFiles/test_pp.dir/test_grad_memory.cc.o.d"
  "/root/repo/tests/pp/test_layer_balance.cc" "tests/pp/CMakeFiles/test_pp.dir/test_layer_balance.cc.o" "gcc" "tests/pp/CMakeFiles/test_pp.dir/test_layer_balance.cc.o.d"
  "/root/repo/tests/pp/test_nc_advisor.cc" "tests/pp/CMakeFiles/test_pp.dir/test_nc_advisor.cc.o" "gcc" "tests/pp/CMakeFiles/test_pp.dir/test_nc_advisor.cc.o.d"
  "/root/repo/tests/pp/test_schedule.cc" "tests/pp/CMakeFiles/test_pp.dir/test_schedule.cc.o" "gcc" "tests/pp/CMakeFiles/test_pp.dir/test_schedule.cc.o.d"
  "/root/repo/tests/pp/test_timeline.cc" "tests/pp/CMakeFiles/test_pp.dir/test_timeline.cc.o" "gcc" "tests/pp/CMakeFiles/test_pp.dir/test_timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/pp/CMakeFiles/llm4d_pp.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/model/CMakeFiles/llm4d_model.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/hw/CMakeFiles/llm4d_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
