file(REMOVE_RECURSE
  "CMakeFiles/test_pp.dir/test_executor.cc.o"
  "CMakeFiles/test_pp.dir/test_executor.cc.o.d"
  "CMakeFiles/test_pp.dir/test_executor_properties.cc.o"
  "CMakeFiles/test_pp.dir/test_executor_properties.cc.o.d"
  "CMakeFiles/test_pp.dir/test_grad_memory.cc.o"
  "CMakeFiles/test_pp.dir/test_grad_memory.cc.o.d"
  "CMakeFiles/test_pp.dir/test_layer_balance.cc.o"
  "CMakeFiles/test_pp.dir/test_layer_balance.cc.o.d"
  "CMakeFiles/test_pp.dir/test_nc_advisor.cc.o"
  "CMakeFiles/test_pp.dir/test_nc_advisor.cc.o.d"
  "CMakeFiles/test_pp.dir/test_schedule.cc.o"
  "CMakeFiles/test_pp.dir/test_schedule.cc.o.d"
  "CMakeFiles/test_pp.dir/test_timeline.cc.o"
  "CMakeFiles/test_pp.dir/test_timeline.cc.o.d"
  "test_pp"
  "test_pp.pdb"
  "test_pp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
