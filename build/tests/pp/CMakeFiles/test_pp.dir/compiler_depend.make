# Empty compiler generated dependencies file for test_pp.
# This may be replaced when dependencies are built.
