file(REMOVE_RECURSE
  "CMakeFiles/test_fsdp.dir/test_fsdp.cc.o"
  "CMakeFiles/test_fsdp.dir/test_fsdp.cc.o.d"
  "test_fsdp"
  "test_fsdp.pdb"
  "test_fsdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
