# Empty compiler generated dependencies file for test_fsdp.
# This may be replaced when dependencies are built.
