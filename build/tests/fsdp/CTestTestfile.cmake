# CMake generated Testfile for 
# Source directory: /root/repo/tests/fsdp
# Build directory: /root/repo/build/tests/fsdp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fsdp/test_fsdp[1]_include.cmake")
