# CMake generated Testfile for 
# Source directory: /root/repo/tests/simcore
# Build directory: /root/repo/build/tests/simcore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simcore/test_simcore[1]_include.cmake")
