
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simcore/test_engine.cc" "tests/simcore/CMakeFiles/test_simcore.dir/test_engine.cc.o" "gcc" "tests/simcore/CMakeFiles/test_simcore.dir/test_engine.cc.o.d"
  "/root/repo/tests/simcore/test_rng.cc" "tests/simcore/CMakeFiles/test_simcore.dir/test_rng.cc.o" "gcc" "tests/simcore/CMakeFiles/test_simcore.dir/test_rng.cc.o.d"
  "/root/repo/tests/simcore/test_stats.cc" "tests/simcore/CMakeFiles/test_simcore.dir/test_stats.cc.o" "gcc" "tests/simcore/CMakeFiles/test_simcore.dir/test_stats.cc.o.d"
  "/root/repo/tests/simcore/test_table.cc" "tests/simcore/CMakeFiles/test_simcore.dir/test_table.cc.o" "gcc" "tests/simcore/CMakeFiles/test_simcore.dir/test_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
