file(REMOVE_RECURSE
  "CMakeFiles/test_simcore.dir/test_engine.cc.o"
  "CMakeFiles/test_simcore.dir/test_engine.cc.o.d"
  "CMakeFiles/test_simcore.dir/test_rng.cc.o"
  "CMakeFiles/test_simcore.dir/test_rng.cc.o.d"
  "CMakeFiles/test_simcore.dir/test_stats.cc.o"
  "CMakeFiles/test_simcore.dir/test_stats.cc.o.d"
  "CMakeFiles/test_simcore.dir/test_table.cc.o"
  "CMakeFiles/test_simcore.dir/test_table.cc.o.d"
  "test_simcore"
  "test_simcore.pdb"
  "test_simcore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
