
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_layer_cost_properties.cc" "tests/model/CMakeFiles/test_model.dir/test_layer_cost_properties.cc.o" "gcc" "tests/model/CMakeFiles/test_model.dir/test_layer_cost_properties.cc.o.d"
  "/root/repo/tests/model/test_model.cc" "tests/model/CMakeFiles/test_model.dir/test_model.cc.o" "gcc" "tests/model/CMakeFiles/test_model.dir/test_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/model/CMakeFiles/llm4d_model.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/hw/CMakeFiles/llm4d_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
