
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel/test_parallelism.cc" "tests/parallel/CMakeFiles/test_parallel.dir/test_parallelism.cc.o" "gcc" "tests/parallel/CMakeFiles/test_parallel.dir/test_parallelism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/parallel/CMakeFiles/llm4d_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
