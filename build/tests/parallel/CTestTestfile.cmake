# CMake generated Testfile for 
# Source directory: /root/repo/tests/parallel
# Build directory: /root/repo/build/tests/parallel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/parallel/test_parallel[1]_include.cmake")
