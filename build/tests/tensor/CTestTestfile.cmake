# CMake generated Testfile for 
# Source directory: /root/repo/tests/tensor
# Build directory: /root/repo/build/tests/tensor
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor/test_tensor[1]_include.cmake")
