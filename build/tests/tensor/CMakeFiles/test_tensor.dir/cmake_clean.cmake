file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/test_attention.cc.o"
  "CMakeFiles/test_tensor.dir/test_attention.cc.o.d"
  "CMakeFiles/test_tensor.dir/test_bf16_exhaustive.cc.o"
  "CMakeFiles/test_tensor.dir/test_bf16_exhaustive.cc.o.d"
  "CMakeFiles/test_tensor.dir/test_bfloat16.cc.o"
  "CMakeFiles/test_tensor.dir/test_bfloat16.cc.o.d"
  "CMakeFiles/test_tensor.dir/test_doc_mask.cc.o"
  "CMakeFiles/test_tensor.dir/test_doc_mask.cc.o.d"
  "CMakeFiles/test_tensor.dir/test_gemm.cc.o"
  "CMakeFiles/test_tensor.dir/test_gemm.cc.o.d"
  "CMakeFiles/test_tensor.dir/test_reduce.cc.o"
  "CMakeFiles/test_tensor.dir/test_reduce.cc.o.d"
  "CMakeFiles/test_tensor.dir/test_tensor_core.cc.o"
  "CMakeFiles/test_tensor.dir/test_tensor_core.cc.o.d"
  "CMakeFiles/test_tensor.dir/test_tp_linear.cc.o"
  "CMakeFiles/test_tensor.dir/test_tp_linear.cc.o.d"
  "test_tensor"
  "test_tensor.pdb"
  "test_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
