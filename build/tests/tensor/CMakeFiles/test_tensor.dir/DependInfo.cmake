
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor/test_attention.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_attention.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_attention.cc.o.d"
  "/root/repo/tests/tensor/test_bf16_exhaustive.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_bf16_exhaustive.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_bf16_exhaustive.cc.o.d"
  "/root/repo/tests/tensor/test_bfloat16.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_bfloat16.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_bfloat16.cc.o.d"
  "/root/repo/tests/tensor/test_doc_mask.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_doc_mask.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_doc_mask.cc.o.d"
  "/root/repo/tests/tensor/test_gemm.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_gemm.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_gemm.cc.o.d"
  "/root/repo/tests/tensor/test_reduce.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_reduce.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_reduce.cc.o.d"
  "/root/repo/tests/tensor/test_tensor_core.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_tensor_core.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_tensor_core.cc.o.d"
  "/root/repo/tests/tensor/test_tp_linear.cc" "tests/tensor/CMakeFiles/test_tensor.dir/test_tp_linear.cc.o" "gcc" "tests/tensor/CMakeFiles/test_tensor.dir/test_tp_linear.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/llm4d/tensor/CMakeFiles/llm4d_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/llm4d/simcore/CMakeFiles/llm4d_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
