# CMake generated Testfile for 
# Source directory: /root/repo/tests/cp
# Build directory: /root/repo/build/tests/cp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cp/test_cp[1]_include.cmake")
