# Empty dependencies file for test_cp.
# This may be replaced when dependencies are built.
