file(REMOVE_RECURSE
  "CMakeFiles/test_cp.dir/test_cp_attention.cc.o"
  "CMakeFiles/test_cp.dir/test_cp_attention.cc.o.d"
  "CMakeFiles/test_cp.dir/test_cp_cost.cc.o"
  "CMakeFiles/test_cp.dir/test_cp_cost.cc.o.d"
  "CMakeFiles/test_cp.dir/test_sharding.cc.o"
  "CMakeFiles/test_cp.dir/test_sharding.cc.o.d"
  "test_cp"
  "test_cp.pdb"
  "test_cp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
