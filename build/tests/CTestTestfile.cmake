# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("simcore")
subdirs("tensor")
subdirs("hw")
subdirs("net")
subdirs("parallel")
subdirs("model")
subdirs("pp")
subdirs("cp")
subdirs("fsdp")
subdirs("plan")
subdirs("sim")
subdirs("debug")
subdirs("data")
subdirs("integration")
