# CMake generated Testfile for 
# Source directory: /root/repo/tests/plan
# Build directory: /root/repo/build/tests/plan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/plan/test_plan[1]_include.cmake")
