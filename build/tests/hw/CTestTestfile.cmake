# CMake generated Testfile for 
# Source directory: /root/repo/tests/hw
# Build directory: /root/repo/build/tests/hw
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hw/test_hw[1]_include.cmake")
