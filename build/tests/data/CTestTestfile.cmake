# CMake generated Testfile for 
# Source directory: /root/repo/tests/data
# Build directory: /root/repo/build/tests/data
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/data/test_data[1]_include.cmake")
