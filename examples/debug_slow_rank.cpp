/**
 * @file
 * Performance debugging at scale (paper Section 6.1, Figure 8).
 *
 * Injects a DVFS-throttled GPU somewhere in an 8,192-rank 4D-parallel
 * job, builds per-rank compute profiles with realistic jitter, and runs
 * the paper's top-down localization: DP -> PP -> CP -> TP, at each level
 * selecting the group whose members wait the least.
 *
 * Build & run:  ./build/examples/debug_slow_rank
 */

#include <cstdio>

#include "llm4d/debug/slow_rank.h"
#include "llm4d/hw/perf_variation.h"
#include "llm4d/simcore/rng.h"
#include "llm4d/simcore/table.h"

using namespace llm4d;

int
main()
{
    // The long-context 8K-GPU job of Section 7.3.2.
    const RankGrid grid(ParallelismConfig{8, 16, 16, 4});
    std::printf("cluster: %lld ranks as tp8 cp16 pp16 dp4\n\n",
                static_cast<long long>(grid.worldSize()));

    Rng pick(123);
    TextTable table("Top-down slow-rank localization");
    table.header({"injected rank", "found rank", "path", "correct"});
    for (int trial = 0; trial < 5; ++trial) {
        const std::int64_t culprit =
            pick.uniformInt(0, grid.worldSize() - 1);

        // Per-rank compute time for one step: nominal 1s, ~1% DVFS
        // jitter, culprit throttled to 78% speed.
        PerfVariation perf = PerfVariation::jitter(0.004, 77 + trial);
        perf.injectStraggler(culprit, 0.78);
        std::vector<double> compute(
            static_cast<std::size_t>(grid.worldSize()));
        for (std::int64_t r = 0; r < grid.worldSize(); ++r)
            compute[static_cast<std::size_t>(r)] = perf.apply(r, 1.0);

        const SlowRankReport rep = findSlowRank(grid, compute);
        std::string path;
        for (const SlowRankStep &s : rep.steps)
            path += s.axis + "=" + std::to_string(s.coordinate) + " ";
        table.row({TextTable::num(culprit), TextTable::num(rep.rank),
                   path, rep.rank == culprit ? "yes" : "NO"});
    }
    table.print();

    std::printf(
        "Note the inversion the paper warns about: every *healthy* rank\n"
        "shows long collectives (it waits); the culprit shows short ones.\n"
        "Walking groups outermost-in pinpoints it without inspecting all\n"
        "8192 traces.\n");
    return 0;
}
