/**
 * @file
 * Numerical debugging methodology (paper Section 6.2).
 *
 * Demonstrates the two halves of the methodology on real floating-point
 * arithmetic:
 *
 *  1. Order-matched baselines: a ring reduce-scatter accumulates each
 *     gradient partition in ring-arrival order, which differs bitwise
 *     from a plain rank-ordered sum. Re-ordering the baseline to match
 *     the ring order gives bitwise equality — proving the gap is an
 *     accumulation-order effect, not a bug. An injected bug (one rank's
 *     gradient double-counted) survives the re-ordering and is thereby
 *     identified as a real defect.
 *
 *  2. FP32 gradient accumulation: accumulating BF16 micro-gradients in a
 *     BF16 buffer drifts; FP32 accumulation tracks the FP64 reference.
 *
 * Build & run:  ./build/examples/numerics_debugging
 */

#include <cstdio>
#include <cstring>

#include "llm4d/debug/numerics.h"
#include "llm4d/simcore/rng.h"
#include "llm4d/simcore/table.h"
#include "llm4d/tensor/reduce.h"

using namespace llm4d;

namespace {

/** Count elements whose bit patterns differ. */
std::size_t
bitDiffs(const std::vector<float> &a, const std::vector<float> &b)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        n += std::memcmp(&a[i], &b[i], sizeof(float)) != 0;
    return n;
}

} // namespace

int
main()
{
    // --- Part 1: is the loss gap a bug or an order effect? ---
    const std::size_t n_params = 8192;
    const std::size_t dp = 8;
    Rng rng(7);
    std::vector<std::vector<float>> shards(dp,
                                           std::vector<float>(n_params));
    for (auto &g : shards)
        for (auto &x : g)
            x = static_cast<float>(rng.normal() * 10.0);

    // "Parallel" result: what a ring reduce-scatter + all-gather yields.
    const auto parallel = ringAllReduce(shards);
    // Naive sequential baseline: sum shards in rank order.
    const auto naive = rankOrderReduce(shards);
    // Matched baseline: re-order the sequential sum to the ring order.
    const auto matched = ringAllReduce(shards);

    TextTable part1("Matched-order baseline check (DP gradient reduce)");
    part1.header({"comparison", "elements w/ bit diffs", "max |diff|",
                  "verdict"});
    {
        const auto r = checkMatchedOrder(parallel, naive);
        part1.row({"ring vs rank-order baseline",
                   TextTable::num(static_cast<std::int64_t>(
                       bitDiffs(parallel, naive))),
                   TextTable::num(r.max_abs_diff, 9),
                   "inconclusive (orders differ)"});
    }
    {
        const auto r = checkMatchedOrder(parallel, matched);
        part1.row({"ring vs ring-ordered baseline",
                   TextTable::num(static_cast<std::int64_t>(
                       bitDiffs(parallel, matched))),
                   TextTable::num(r.max_abs_diff, 9),
                   r.indicatesImplementationBug() ? "BUG" : "no bug"});
    }
    {
        // Inject a bug: rank 5's shard double-counted.
        auto buggy_shards = shards;
        for (auto &x : buggy_shards[5])
            x *= 2.0f;
        const auto buggy = ringAllReduce(buggy_shards);
        const auto r = checkMatchedOrder(buggy, matched);
        part1.row({"buggy ring vs ring-ordered baseline",
                   TextTable::num(static_cast<std::int64_t>(
                       bitDiffs(buggy, matched))),
                   TextTable::num(r.max_abs_diff, 4),
                   r.indicatesImplementationBug()
                       ? "BUG (correctly found)"
                       : "missed"});
    }
    part1.print();

    // --- Part 2: why gradients accumulate in FP32. ---
    std::vector<std::vector<float>> micro_grads(
        64, std::vector<float>(n_params));
    for (auto &g : micro_grads)
        for (auto &x : g)
            x = static_cast<float>(rng.normal() * 0.1);

    TextTable part2("Gradient accumulation drift over 64 micro-batches");
    part2.header({"accumulator", "mean |err| vs FP64", "max |err|"});
    const auto d32 = measureAccumulationDrift(micro_grads, false);
    const auto d16 = measureAccumulationDrift(micro_grads, true);
    part2.row({"FP32", TextTable::num(d32.mean_abs_error, 9),
               TextTable::num(d32.max_abs_error, 9)});
    part2.row({"BF16", TextTable::num(d16.mean_abs_error, 6),
               TextTable::num(d16.max_abs_error, 6)});
    part2.print();

    const TrajectoryDrift drift =
        simulateTrainingDrift(512, 100, 32, 0.05, 11);
    std::printf("After 100 simulated optimizer steps, parameter drift vs "
                "the FP64 trajectory:\n  FP32 accumulation: %.2e\n  BF16 "
                "accumulation: %.2e  (the diverging loss curve of "
                "Section 6.2)\n",
                drift.fp32_drift, drift.bf16_drift);
    return 0;
}
