/**
 * @file
 * Visual tour of the pipeline schedules (paper Figures 2 and 3).
 *
 * Renders executed timelines for the paper's Figure-2 configuration and
 * for the three schedule families on a P2P-heavy pipeline, making the
 * warm-up / 1F1B steady state / cool-down structure and the exposed-P2P
 * bubbles directly visible. Also demonstrates the Figure-8 stacked
 * collective view used for slow-rank debugging.
 *
 * Build & run:  ./build/examples/schedule_explorer
 */

#include <cstdio>

#include "llm4d/debug/trace.h"
#include "llm4d/pp/legality.h"
#include "llm4d/pp/timeline.h"
#include "llm4d/simcore/rng.h"

using namespace llm4d;

namespace {

void
show(const char *title, const Schedule &sched, double p2p_ms)
{
    const ExecResult exec = executeSchedule(
        sched, ExecConfig::uniform(3e-3, 6e-3, p2p_ms * 1e-3));
    std::printf("--- %s ---\n", title);
    std::printf("%s", renderTimeline(sched, exec,
                                     TimelineOptions{88, false})
                          .c_str());
    std::printf("bubble %.1f%%, peak in-flight on rank 0: %lld "
                "micro-batches\n\n",
                exec.overallBubbleRatio() * 100.0,
                static_cast<long long>(exec.peakInFlight(0)));
}

} // namespace

int
main()
{
    // The paper's Figure 2: pp=3, v=2, 6 micro-batches, nc=3.
    const Schedule fig2 = buildFlexible(ScheduleParams{3, 2, 6, 3});
    std::printf("Paper Figure 2 as an instruction stream:\n%s\n",
                fig2.render().c_str());
    show("Figure 2 executed (uniform stages, no P2P cost)", fig2, 0.0);

    // Figure 3: the same pipeline under exposed P2P, three regimes.
    std::printf("With exposed P2P (0.8 ms/hop), pp=4 v=4 nmb=24:\n\n");
    show("nc = 4 (classic interleaved 1F1B)",
         buildFlexible(ScheduleParams{4, 4, 24, 4}), 0.8);
    show("nc = 8 (flexible: extra warm-up hides P2P)",
         buildFlexible(ScheduleParams{4, 4, 24, 8}), 0.8);
    show("all-forward-all-backward",
         buildAllForwardAllBackward(ScheduleParams{4, 4, 24, 24}), 0.8);

    // Legality checking on demand.
    const LegalityResult legal =
        checkSchedule(buildFlexible(ScheduleParams{8, 3, 20, 11}));
    std::printf("legality of an odd config (pp8 v3 nmb20 nc11): %s\n\n",
                legal.legal ? "legal" : legal.reason.c_str());

    // Figure 8: the stacked collective view of a TP group with a hidden
    // straggler.
    RankGrid grid(ParallelismConfig{4, 2, 1, 1});
    std::vector<double> compute(8, 1.0);
    Rng rng(3);
    for (auto &c : compute)
        c += 0.02 * rng.uniform();
    compute[2] = 1.4; // the culprit
    const ClusterTrace trace = ClusterTrace::synthesize(grid, compute, 2);
    std::printf("Figure 8 view — TP group of rank 0 (culprit: rank 2, "
                "note its short '#'):\n%s\n",
                trace.renderGroup(grid.tpGroup(0), "tp", 72).c_str());
    const SlowRankReport rep = findSlowRankFromTrace(grid, trace);
    std::printf("top-down localization: %s\n", rep.render().c_str());
    return 0;
}
