/**
 * @file
 * Quickstart: configure Llama 3 405B pre-training on the 16K-GPU cluster
 * with the paper's Table-2 parallelism, simulate one training step, and
 * print what the paper's evaluation reports — TFLOPs/GPU, pipeline bubble,
 * exposed communication, and per-rank memory.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <optional>

#include "llm4d/plan/planner.h"
#include "llm4d/sim/train_sim.h"
#include "llm4d/simcore/table.h"

using namespace llm4d;

int
main()
{
    // --- 1. Let the planner derive the parallelism (Section 5). ---
    PlanInput input; // defaults: 405B model, 16,384 H100s, 16M tokens, 8K
    const std::optional<PlanCandidate> best = tryBestPlan(input);
    if (!best) {
        std::printf("no feasible parallelism configuration\n");
        return 1;
    }
    const PlanCandidate &plan = *best;
    std::printf("Planner chose: %s with %s (bs=%lld sequences/DP group)\n\n",
                plan.par.str().c_str(), zeroModeName(plan.zero),
                static_cast<long long>(plan.bs));

    // --- 2. Simulate one training step with that configuration. ---
    TrainJobConfig job;
    job.par = plan.par;
    job.zero = plan.zero;
    job.schedule = plan.schedule;
    const TrainSim sim(job);
    const TrainStepReport rep = sim.run();

    TextTable table("One simulated 405B training step (seq 8192)");
    table.header({"metric", "value"});
    table.row({"step time", TextTable::num(rep.step_seconds, 3) + " s"});
    table.row({"TFLOPs/GPU", TextTable::num(rep.tflops_per_gpu, 0)});
    table.row({"MFU", TextTable::pct(rep.mfu)});
    table.row({"pipeline bubble", TextTable::pct(rep.bubble_ratio)});
    table.row({"exposed TP comm",
               TextTable::num(rep.exposed_tp_seconds, 3) + " s"});
    table.row({"exposed FSDP comm",
               TextTable::num(rep.exposed_fsdp_seconds, 3) + " s"});
    table.row({"micro-batches", TextTable::num(rep.nmb)});
    table.row({"virtual stages/rank", TextTable::num(rep.v)});
    table.row({"peak memory",
               TextTable::num(rep.maxMemoryGib(), 1) + " GiB"});
    table.row({"fits in 80 GiB HBM", rep.fits(80.0) ? "yes" : "NO"});
    table.print();

    // --- 3. Per-PP-rank memory, the Section 3.1.2 balance view. ---
    TextTable mem("Peak memory per pipeline rank");
    mem.header({"pp rank", "weights", "grads", "optimizer", "activations",
                "total GiB"});
    for (std::size_t r = 0; r < rep.pp_rank_memory.size(); ++r) {
        const MemoryBreakdown &mb = rep.pp_rank_memory[r];
        mem.row({TextTable::num(static_cast<std::int64_t>(r)),
                 TextTable::num(MemoryBreakdown::toGib(mb.weights), 1),
                 TextTable::num(MemoryBreakdown::toGib(mb.grads), 1),
                 TextTable::num(MemoryBreakdown::toGib(mb.optimizer), 1),
                 TextTable::num(MemoryBreakdown::toGib(mb.activations), 1),
                 TextTable::num(mb.totalGib(), 1)});
    }
    mem.print();
    return 0;
}
