/**
 * @file
 * The Section 3.2 multimodal case study as a runnable walkthrough.
 *
 * Replays the production decision sequence: start with the image encoder
 * as a serial pre-processing stage on the first PP rank (Option 2),
 * upgrade the encoder from 448 px to 672 px, watch the encoder swallow a
 * third of the step, then switch to replicating the encoder across PP
 * ranks (Option 3) and recover the throughput.
 *
 * Build & run:  ./build/examples/multimodal_training
 */

#include <cstdio>

#include "llm4d/sim/multimodal.h"
#include "llm4d/simcore/table.h"

using namespace llm4d;

namespace {

MultimodalReport
runJob(EncoderSharding sharding, const VitConfig &vit)
{
    MultimodalJobConfig cfg;
    cfg.mm.vit = vit;
    cfg.encoder = sharding;
    return simulateMultimodalStep(cfg);
}

void
report(TextTable &table, const char *label, const MultimodalReport &rep)
{
    table.row({label, TextTable::num(rep.step_seconds * 1e3, 1),
               TextTable::num(rep.encoder_seconds * 1e3, 1),
               TextTable::pct(rep.encoderShare()),
               TextTable::pct(rep.bubble_ratio)});
}

} // namespace

int
main()
{
    std::printf("Llama 3 multimodal pre-training: frozen text trunk, "
                "trained ViT encoder +\ncross-attention layers "
                "(1 per %lld self-attention layers).\n\n",
                static_cast<long long>(
                    MultimodalConfig::llama3Multimodal().self_per_cross));

    const VitConfig vit448 = VitConfig::vit448();
    const VitConfig vit672 = VitConfig::vit672();
    std::printf("encoder upgrade: %s (%lld tokens/image) -> %s "
                "(%lld tokens/image)\n\n",
                vit448.name.c_str(),
                static_cast<long long>(vit448.imageTokens()),
                vit672.name.c_str(),
                static_cast<long long>(vit672.imageTokens()));

    TextTable table("Encoder sharding options (Figure 6)");
    table.header({"configuration", "step ms", "encoder ms",
                  "encoder share", "pp bubble"});
    report(table, "option2 serial, 448px",
           runJob(EncoderSharding::SerialFirstRank, vit448));
    report(table, "option2 serial, 672px",
           runJob(EncoderSharding::SerialFirstRank, vit672));
    report(table, "option1 folded, 672px",
           runJob(EncoderSharding::FoldedIntoPipeline, vit672));
    report(table, "option3 replicated, 672px",
           runJob(EncoderSharding::ReplicatedPerRank, vit672));
    table.print();

    const MultimodalReport before =
        runJob(EncoderSharding::SerialFirstRank, vit672);
    const MultimodalReport after =
        runJob(EncoderSharding::ReplicatedPerRank, vit672);
    std::printf("Switching Option 2 -> Option 3 at 672px: encoder share "
                "%.0f%% -> %.0f%%, step %.1fx faster.\n",
                before.encoderShare() * 100.0,
                after.encoderShare() * 100.0,
                before.step_seconds / after.step_seconds);
    std::printf("(Paper Section 3.2.1: 33%% -> 8%% and recovered TFLOPs.)\n");
    return 0;
}
