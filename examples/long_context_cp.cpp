/**
 * @file
 * Long-context training with context parallelism (paper Sections 4, 5,
 * 7.3.2).
 *
 * Walks the full CP story end to end:
 *  1. the planner discovers that 131K context needs cp=16 (Table 2);
 *  2. the executable all-gather CP attention computes *exactly* the same
 *     numbers as a single device, including across document boundaries
 *     that straddle CP chunks;
 *  3. a simulated 4D training step shows the long-context throughput and
 *     the document-mask imbalance that bounds overlap-based designs.
 *
 * Build & run:  ./build/examples/long_context_cp
 */

#include <cstdio>
#include <optional>

#include "llm4d/cp/cp_attention.h"
#include "llm4d/plan/planner.h"
#include "llm4d/sim/train_sim.h"
#include "llm4d/simcore/table.h"

using namespace llm4d;

int
main()
{
    // --- 1. Planner: why cp = 16. ---
    PlanInput input;
    input.seq = 131072;
    const std::optional<PlanCandidate> best = tryBestPlan(input);
    if (!best) {
        std::printf("no feasible 131K-context configuration\n");
        return 1;
    }
    const PlanCandidate &plan = *best;
    std::printf("131K-context plan: %s (%s), bs=%lld, est %.0f TFLOPs/GPU\n\n",
                plan.par.str().c_str(), zeroModeName(plan.zero),
                static_cast<long long>(plan.bs), plan.est_tflops_per_gpu);

    // --- 2. Exactness of all-gather CP attention with document masks. ---
    // The paper's own example: 16 tokens, documents of length [3,3,8,2],
    // cp = 2 (Figure 7c). Scale it up a little to make the point.
    Rng rng(2024);
    const std::int64_t seq = 128;
    const Tensor q = Tensor::randn({4, seq, 16}, rng);
    const Tensor k = Tensor::randn({2, seq, 16}, rng);
    const Tensor v = Tensor::randn({2, seq, 16}, rng);
    const DocMask mask = DocMask::fromDocLengths({24, 24, 64, 16});
    const auto reference = referenceAttention(q, k, v, mask);

    TextTable exact("All-gather CP attention vs single device");
    exact.header({"cp", "max |diff| (all-gather)", "max |diff| (ring)"});
    for (std::int64_t cp : {2, 4}) {
        const CpSharding sharding(seq, cp);
        const Tensor ag =
            runAllRanksForward(q, k, v, mask, sharding, false);
        const Tensor ring =
            runAllRanksForward(q, k, v, mask, sharding, true);
        exact.row({TextTable::num(cp),
                   TextTable::num(ag.maxAbsDiff(reference.out), 7),
                   TextTable::num(ring.maxAbsDiff(reference.out), 7)});
    }
    exact.print();

    // KV gradients: per-rank partials reduce to the exact full gradient
    // ("CP is an extension of DP" for parameter-side collectives).
    const Tensor d_out = Tensor::randn({4, seq, 16}, rng);
    const auto ref_grads =
        referenceAttentionBackward(q, k, v, mask, d_out);
    const auto cp_grads =
        runAllRanksBackward(q, k, v, mask, d_out, CpSharding(seq, 2));
    std::printf("backward: |dK - ref| = %.2e, |dV - ref| = %.2e\n\n",
                cp_grads.dk.maxAbsDiff(ref_grads.dk),
                cp_grads.dv.maxAbsDiff(ref_grads.dv));

    // --- 3. Simulated 4D long-context step. ---
    TrainJobConfig job;
    job.par = plan.par;
    job.zero = plan.zero;
    job.schedule = plan.schedule;
    job.seq = 131072;
    job.doc_mask_mean = 4096.0; // packed documents
    const TrainStepReport rep = TrainSim(job).run();

    TextTable step("Simulated 131K-context step (4D parallelism)");
    step.header({"metric", "value"});
    step.row({"step time", TextTable::num(rep.step_seconds, 3) + " s"});
    step.row({"TFLOPs/GPU", TextTable::num(rep.tflops_per_gpu, 0)});
    step.row({"exposed CP comm",
              TextTable::num(rep.exposed_cp_seconds, 3) + " s"});
    step.row({"pipeline bubble", TextTable::pct(rep.bubble_ratio)});
    step.row({"peak memory", TextTable::num(rep.maxMemoryGib(), 1) + " GiB"});
    step.print();
    return 0;
}
