/**
 * @file
 * Capability-computing capacity planning (paper Sections 1 and 5).
 *
 * "Llama 3 pre-training is a capability computing problem": the batch is
 * fixed at 16M tokens, so adding GPUs shrinks the per-GPU batch and the
 * parallelism configuration must be re-derived at every scale. This
 * example runs the Section-5 planner across cluster sizes and shows how
 * the chosen configuration, per-GPU efficiency, and projected training
 * time evolve — including the total time for the 405B run's 3.8e25 FLOPs
 * budget.
 *
 * Build & run:  ./build/examples/capacity_planner
 */

#include <cstdio>

#include "llm4d/plan/planner.h"
#include "llm4d/simcore/table.h"

using namespace llm4d;

int
main()
{
    const double total_flops = 3.8e25; // the Llama 3 405B budget

    TextTable table("405B pre-training across cluster scales "
                    "(16M tokens/step, seq 8192)");
    table.header({"GPUs", "config", "zero", "bs", "TFLOPs/GPU",
                  "step s", "days for 3.8e25 FLOPs"});
    for (std::int64_t ngpu : {2048, 4096, 8192, 16384}) {
        PlanInput in;
        in.cluster = ClusterSpec::llama3Production(ngpu);
        const PlanCandidate best = bestPlan(in);
        // Model FLOPs per step: ~6 * params * tokens (fwd + bwd).
        const double step_flops = 6.0 *
                                  static_cast<double>(
                                      in.model.totalParams()) *
                                  static_cast<double>(
                                      in.global_batch_tokens);
        const double steps = total_flops / step_flops;
        const double days =
            steps * best.est_step_seconds / 86400.0;
        table.row({TextTable::num(ngpu), best.par.str(),
                   zeroModeName(best.zero), TextTable::num(best.bs),
                   TextTable::num(best.est_tflops_per_gpu, 0),
                   TextTable::num(best.est_step_seconds, 2),
                   TextTable::num(days, 0)});
    }
    table.print();

    std::printf(
        "Fixed token budget means bs = gbs/ndp shrinks as the cluster "
        "grows: the planner\ncompensates by re-tuning the parallelism "
        "mix. Per-GPU efficiency erodes slightly\nat scale while total "
        "time keeps dropping — the capability-computing trade the\n"
        "paper's introduction describes.\n");
    return 0;
}
