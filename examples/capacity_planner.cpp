/**
 * @file
 * Capability-computing capacity planning (paper Sections 1, 5, and 8).
 *
 * "Llama 3 pre-training is a capability computing problem": the batch is
 * fixed at 16M tokens, so adding GPUs shrinks the per-GPU batch and the
 * parallelism configuration must be re-derived at every scale. This
 * example runs the Section-5 planner across cluster sizes and shows how
 * the chosen configuration, per-GPU efficiency, and projected training
 * time evolve — including the total time for the 405B run's 3.8e25 FLOPs
 * budget — and then re-ranks the same candidates by simulated goodput
 * under failures (Section 8), printing the fault-free and fault-aware
 * choices side by side.
 *
 * Build & run:  ./build/examples/capacity_planner
 */

#include <cstdio>
#include <optional>

#include "llm4d/plan/goodput_planner.h"
#include "llm4d/plan/planner.h"
#include "llm4d/simcore/table.h"

using namespace llm4d;

int
main()
{
    const double total_flops = 3.8e25; // the Llama 3 405B budget

    TextTable table("405B pre-training across cluster scales "
                    "(16M tokens/step, seq 8192)");
    table.header({"GPUs", "config", "zero", "bs", "TFLOPs/GPU",
                  "step s", "days for 3.8e25 FLOPs"});
    for (std::int64_t ngpu : {2048, 4096, 8192, 16384}) {
        PlanInput in;
        in.cluster = ClusterSpec::llama3Production(ngpu);
        const std::optional<PlanCandidate> best = tryBestPlan(in);
        if (!best) {
            table.row({TextTable::num(ngpu), "infeasible", "-", "-", "-",
                       "-", "-"});
            continue;
        }
        // Model FLOPs per step: ~6 * params * tokens (fwd + bwd).
        const double step_flops = 6.0 *
                                  static_cast<double>(
                                      in.model.totalParams()) *
                                  static_cast<double>(
                                      in.global_batch_tokens);
        const double steps = total_flops / step_flops;
        const double days =
            steps * best->est_step_seconds / 86400.0;
        table.row({TextTable::num(ngpu), best->par.str(),
                   zeroModeName(best->zero), TextTable::num(best->bs),
                   TextTable::num(best->est_tflops_per_gpu, 0),
                   TextTable::num(best->est_step_seconds, 2),
                   TextTable::num(days, 0)});
    }
    table.print();

    std::printf(
        "Fixed token budget means bs = gbs/ndp shrinks as the cluster "
        "grows: the planner\ncompensates by re-tuning the parallelism "
        "mix. Per-GPU efficiency erodes slightly\nat scale while total "
        "time keeps dropping — the capability-computing trade the\n"
        "paper's introduction describes.\n\n");

    // --- Fault-aware re-ranking: both planners side by side. ---
    // The goodput planner simulates the analytic survivors through
    // TrainRunSim under one fault seed and a recovery-policy sweep; the
    // fault-free winner and the goodput winner can diverge once restart
    // blast radius and checkpoint overhead are charged.
    TextTable both("Fault-free vs goodput-ranked plan per scale "
                   "(common fault seed)");
    both.header({"GPUs", "fault-free winner", "goodput winner", "policy",
                 "spares", "goodput TFLOPs/GPU", "same?"});
    for (std::int64_t ngpu : {2048, 4096, 8192, 16384}) {
        GoodputPlanInput gin;
        gin.base.cluster = ClusterSpec::llama3Production(ngpu);
        gin.top_k = 4;
        gin.horizon_steps = 3000;
        const std::optional<PlanCandidate> analytic =
            tryBestPlan(gin.base);
        const std::optional<GoodputPlanCandidate> fault_aware =
            tryBestGoodputPlan(gin);
        if (!analytic || !fault_aware) {
            both.row({TextTable::num(ngpu), "infeasible", "-", "-", "-",
                      "-", "-"});
            continue;
        }
        const GoodputSweepPoint &cell = fault_aware->best();
        const bool same = fault_aware->analytic.par == analytic->par &&
                          fault_aware->analytic.zero == analytic->zero;
        both.row({TextTable::num(ngpu), analytic->par.str(),
                  fault_aware->analytic.par.str(),
                  std::string(toString(cell.policy.mode)) + "/" +
                      toString(cell.policy.checkpoint_mode),
                  TextTable::num(cell.policy.spare_hosts),
                  TextTable::num(fault_aware->goodput_tflops_per_gpu, 1),
                  same ? "yes" : "DIVERGED"});
    }
    both.print();
    std::printf(
        "Where the rows diverge, the fault-free winner loses goodput to "
        "its restart\nblast radius: recovery charges (rollback, re-init, "
        "sharded restore, warmup)\nare absolute costs, so near-tied "
        "candidates reorder once they are priced.\n");
    return 0;
}
