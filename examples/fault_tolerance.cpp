/**
 * @file
 * Fault-tolerance simulation: goodput of a multi-day 405B training run
 * under component failures, checkpoint/restart, link flaps, and silent
 * stragglers (paper Section 8; Llama 3's 54-day production run saw 419
 * unexpected interruptions — roughly one every three hours).
 *
 * Shows the four headline results of the fault subsystem:
 *  1. where the wall-clock of a failure-ridden run actually goes;
 *  2. the empirical optimal checkpoint interval vs. Young-Daly;
 *  3. goodput shrinking with scale at fixed per-GPU failure rates;
 *  4. recovery policies compared on one fault timeline: full restarts
 *     vs. warm-spare swaps vs. the elastic stack (spares + DP-shrink +
 *     async checkpointing + straggler rebalancing);
 *  5. host repair + DP-regrow: a shrink-capable job that loses a data-
 *     parallel replica and buys the width back once the broken host
 *     clears the repair shop;
 *  6. hierarchical checkpoint tiers + partial restart: HBM peer mirrors
 *     at every boundary make rollback nearly free, and a GpuFatal swap
 *     restores from the peer mirror instead of the filesystem — only a
 *     HostCrash (which destroys that host's local copies) pays the
 *     global tier.
 *
 * Deterministic under the fixed seed: rerunning prints identical numbers.
 *
 * Build & run:  ./build/examples/fault_tolerance
 */

#include <cstdio>

#include "llm4d/sim/train_run_sim.h"
#include "llm4d/simcore/table.h"

using namespace llm4d;

namespace {

TrainRunConfig
productionRun()
{
    TrainRunConfig cfg; // 405B on 16,384 H100s, Table-2 parallelism
    cfg.total_steps = 5000;
    cfg.checkpoint_interval_steps = 50;
    cfg.seed = 2024;
    return cfg;
}

void
printRun(const TrainRunSim &sim, const TrainRunReport &rep)
{
    TextTable table("Simulated production run (16,384 GPUs)");
    table.header({"metric", "value"});
    table.row({"cluster MTBF",
               TextTable::num(sim.mtbfSeconds() / 3600.0, 2) + " h"});
    table.row({"steps committed",
               TextTable::num(rep.steps_committed) + " / " +
                   TextTable::num(sim.config().total_steps)});
    table.row({"wall-clock", TextTable::num(rep.wall_seconds / 3600.0, 2) +
                                 " h (ideal " +
                                 TextTable::num(rep.ideal_seconds / 3600.0,
                                                2) +
                                 " h)"});
    table.row({"interruptions",
               TextTable::num(rep.faults.gpu_fatal + rep.faults.host_crash) +
                   " fatal, " + TextTable::num(rep.faults.stragglers) +
                   " stragglers, " + TextTable::num(rep.faults.link_flaps) +
                   " link flaps"});
    table.row({"restarts", TextTable::num(rep.restarts)});
    table.row({"steps lost to rollback", TextTable::num(rep.steps_lost)});
    table.row({"goodput", TextTable::num(rep.goodput_tflops_per_gpu, 1) +
                              " TFLOPs/GPU (base " +
                              TextTable::num(rep.base_tflops_per_gpu, 1) +
                              ")"});
    table.row({"goodput fraction", TextTable::pct(rep.goodputFraction())});
    table.row({"availability", TextTable::pct(rep.availability)});
    table.print();

    TextTable where("Where the wall-clock went");
    where.header({"bucket", "hours", "share"});
    const auto bucket = [&](const char *name, double seconds) {
        where.row({name, TextTable::num(seconds / 3600.0, 2),
                   TextTable::pct(seconds / rep.wall_seconds)});
    };
    bucket("productive steps", rep.productive_seconds);
    bucket("degradation (stragglers/flaps/warmup)", rep.degraded_seconds);
    bucket("checkpoint saves", rep.checkpoint_seconds);
    bucket("lost (rolled-back) work", rep.lost_seconds);
    bucket("failure detection", rep.detection_seconds);
    bucket("restart + restore", rep.restart_seconds);
    where.print();
}

} // namespace

int
main()
{
    // --- 1. One production-scale run through the fault model. ---
    const TrainRunSim sim(productionRun());
    printRun(sim, sim.run());

    // --- 2. Checkpoint-interval scan vs. the Young-Daly optimum. ---
    const std::int64_t yd = sim.youngDalyIntervalSteps();
    TextTable scan("Checkpoint interval scan (same fault timeline)");
    scan.header({"interval (steps)", "goodput TFLOPs/GPU", "note"});
    for (const auto &pt : sim.scanCheckpointIntervals(
             {yd / 4, yd / 2, yd, 2 * yd, 4 * yd})) {
        scan.row({TextTable::num(pt.interval_steps),
                  TextTable::num(pt.goodput_tflops_per_gpu, 1),
                  pt.interval_steps == yd ? "<- Young-Daly sqrt(2*MTBF*C)"
                                          : ""});
    }
    scan.print();
    std::printf("Checkpoint save: %.1f s sharded over the cluster "
                "(%.1f GB/GPU)\n\n",
                sim.checkpoint().saveSeconds(),
                sim.checkpoint().bytesPerGpu() / 1e9);

    // --- 3. Goodput vs. scale at the same per-GPU failure rates. ---
    TextTable scale("Scale vs. goodput (same per-GPU failure rates, "
                    "Young-Daly-tuned checkpoints)");
    scale.header({"GPUs", "fatal faults/h", "ckpt interval",
                  "goodput TFLOPs/GPU", "goodput fraction"});
    struct Point
    {
        std::int64_t gpus;
        ParallelismConfig par;
        std::int64_t batch_tokens;
    };
    const Point points[] = {
        {2048, ParallelismConfig{8, 1, 16, 16}, 2LL * 1024 * 1024},
        {16384, ParallelismConfig{8, 1, 16, 128}, 16LL * 1024 * 1024},
    };
    for (const Point &p : points) {
        TrainRunConfig cfg = productionRun();
        cfg.job.cluster = ClusterSpec::llama3Production(p.gpus);
        cfg.job.par = p.par;
        cfg.job.global_batch_tokens = p.batch_tokens; // bs = 16 per DP group
        cfg.total_steps = 3000;
        // Each scale gets its own optimal interval: smaller clusters have
        // slower per-host saves AND rarer failures, so they checkpoint
        // far less often.
        cfg.checkpoint_interval_steps =
            TrainRunSim(cfg).youngDalyIntervalSteps();
        const TrainRunSim s(cfg);
        const TrainRunReport r = s.run();
        scale.row({TextTable::num(p.gpus),
                   TextTable::num(cfg.job.cluster.fatalFailuresPerHour(), 3),
                   TextTable::num(cfg.checkpoint_interval_steps) + " steps",
                   TextTable::num(r.goodput_tflops_per_gpu, 1),
                   TextTable::pct(r.goodputFraction())});
    }
    scale.print();
    std::puts("Same per-component MTBF: 8x the GPUs means 8x the cluster\n"
              "failure rate, and the whole synchronized job pays for every\n"
              "single one — the paper's Section 8 operations story.\n");

    // --- 4. Recovery policies on one fault timeline (common seed). ---
    // The failure process is exogenous — a pure function of the seed —
    // so all three runs face the exact same faults and the table
    // isolates what each policy does about them.
    struct Candidate
    {
        const char *name;
        RecoveryPolicy policy;
    };
    RecoveryPolicy warm_sync;
    warm_sync.mode = RecoveryMode::WarmSpare;
    warm_sync.spare_hosts = 8;
    RecoveryPolicy elastic_regrow = RecoveryPolicy::elastic(8);
    elastic_regrow.allow_regrow = true;
    const Candidate candidates[] = {
        {"full restart / sync ckpt", RecoveryPolicy{}},
        {"warm spares / sync ckpt", warm_sync},
        {"elastic: spares+shrink+async+rebalance",
         RecoveryPolicy::elastic(8)},
        {"elastic + host-repair regrow", elastic_regrow},
    };
    TextTable policies("Recovery policies, identical fault timeline "
                       "(16,384 GPUs, seed 2024)");
    policies.header({"policy", "restarts", "swaps", "rebalances",
                     "shrinks", "regrows", "final dp", "lost h",
                     "goodput"});
    for (const Candidate &c : candidates) {
        TrainRunConfig cfg = productionRun();
        cfg.policy = c.policy;
        const TrainRunSim s(cfg);
        const TrainRunReport r = s.run();
        policies.row(
            {c.name, TextTable::num(r.restarts),
             TextTable::num(r.spare_swaps),
             TextTable::num(r.rebalances),
             TextTable::num(r.dp_shrinks),
             TextTable::num(r.dp_regrows),
             TextTable::num(r.final_dp),
             TextTable::num(r.lost_seconds / 3600.0, 2),
             TextTable::pct(r.goodputFraction())});
    }
    policies.print();
    std::puts("Warm spares replace the 180 s scheduler round-trip with a\n"
              "~80 s swap; async checkpointing moves the sharded save off\n"
              "the critical path (only the DRAM snapshot blocks) and its\n"
              "shorter Young-Daly interval shrinks every rollback window;\n"
              "micro-batch rebalancing absorbs stragglers without evicting\n"
              "the host (MegaScale arXiv:2402.15627, TorchTitan\n"
              "arXiv:2410.06511).\n");

    // --- 5. Host repair + DP-regrow on a shrink-capable job. ---
    // The Table-2 batch (16 sequences per replica) cannot lose a
    // replica without breaking micro-batch divisibility, so this demo
    // runs a long-context variant — tp8 cp8 pp16 dp16 with a
    // 240-sequence batch — where dp 16 -> 15 stays legal. One spare
    // host, fatal faults only; the shrink-only and regrow runs face the
    // identical fault AND repair timelines (the repair shop draws from
    // its own RNG streams), so the delta is purely the regrow bit.
    TrainRunConfig ecfg;
    ecfg.job.par = ParallelismConfig{8, 8, 16, 16};
    ecfg.job.global_batch_tokens = 240LL * 8192;
    ecfg.job.cluster.node.gpu.straggler_mtbf_hours = 0.0;
    ecfg.job.cluster.node.nic_flap_mtbf_hours = 0.0;
    ecfg.job.cluster.node.gpu.fatal_mtbf_hours = 2000.0;
    ecfg.total_steps = 3600;
    ecfg.checkpoint_interval_steps = 20;
    ecfg.seed = 5;
    ecfg.policy = RecoveryPolicy::elastic(1);
    ecfg.repairs.gpu_repair_mean_hours = 0.2;
    ecfg.repairs.host_repair_mean_hours = 0.3;
    TrainRunConfig rcfg = ecfg;
    rcfg.policy.allow_regrow = true;
    const TrainRunReport shrank = TrainRunSim(ecfg).run();
    const TrainRunReport regrew = TrainRunSim(rcfg).run();
    TextTable regrow("Shrink-only vs DP-regrow, same fault + repair "
                     "timeline (tp8 cp8 pp16 dp16, 1 spare)");
    regrow.header({"metric", "shrink-only", "+ regrow"});
    regrow.row({"wall-clock (same steps)",
                TextTable::num(shrank.wall_seconds / 3600.0, 2) + " h",
                TextTable::num(regrew.wall_seconds / 3600.0, 2) + " h"});
    regrow.row({"fatal faults (longer run sees more)",
                TextTable::num(shrank.faults.gpu_fatal +
                               shrank.faults.host_crash),
                TextTable::num(regrew.faults.gpu_fatal +
                               regrew.faults.host_crash)});
    regrow.row({"dp shrinks", TextTable::num(shrank.dp_shrinks),
                TextTable::num(regrew.dp_shrinks)});
    regrow.row({"hosts repaired", TextTable::num(shrank.hosts_repaired),
                TextTable::num(regrew.hosts_repaired)});
    regrow.row({"dp regrows", TextTable::num(shrank.dp_regrows),
                TextTable::num(regrew.dp_regrows)});
    regrow.row({"final dp (configured 16)",
                TextTable::num(shrank.final_dp),
                TextTable::num(regrew.final_dp)});
    regrow.row({"full restarts", TextTable::num(shrank.restarts),
                TextTable::num(regrew.restarts)});
    regrow.row({"regrow outage",
                TextTable::num(shrank.regrow_seconds, 1) + " s",
                TextTable::num(regrew.regrow_seconds, 1) + " s"});
    regrow.row({"goodput",
                TextTable::num(shrank.goodput_tflops_per_gpu, 1) +
                    " TFLOPs/GPU",
                TextTable::num(regrew.goodput_tflops_per_gpu, 1) +
                    " TFLOPs/GPU"});
    regrow.print();
    std::puts("Shrink-only keeps the reduced width for the rest of the\n"
              "run and pays a full scheduler round-trip per fault once\n"
              "the pool is dry. With regrow, each repaired host is\n"
              "re-admitted at the next durable checkpoint — refilling\n"
              "the spare pool first, then growing DP back — so the\n"
              "cluster ends the run at its configured width.\n");

    // --- 6. Hierarchical tiers + partial restart, same CRN framing. ---
    // The tiered run mirrors every boundary into DP-peer HBM (a ~p2p
    // write), spills to host NVMe every 4th, and only writes the global
    // filesystem every 16th. Failure domains decide the restore tier: a
    // GpuFatal leaves both local tiers intact, so a partial-restart
    // swap reads the peer mirror and only the replacement host
    // re-fetches shards; a HostCrash destroys that host's HBM and NVMe
    // copies, so the run falls back to the global tier (counted below).
    // Each arm runs at its own Young-Daly interval: the tiered arm's
    // blocking cost is the HBM mirror, so its optimum contracts to a
    // few steps and the global write (every 16th boundary) still lands
    // more often than the global-only arm's every boundary.
    TrainRunConfig gcfg = ecfg;
    gcfg.checkpoint_interval_steps =
        TrainRunSim(gcfg).youngDalyIntervalSteps();
    TrainRunConfig hcfg = gcfg;
    hcfg.storage.hier.enabled = true;
    hcfg.policy.partial_restart = true;
    hcfg.checkpoint_interval_steps =
        TrainRunSim(hcfg).youngDalyIntervalSteps();
    const TrainRunReport global_only = TrainRunSim(gcfg).run();
    const TrainRunReport hier = TrainRunSim(hcfg).run();
    TextTable tiers("Global-only vs hierarchical tiers + partial "
                    "restart, same fault timeline");
    tiers.header({"metric", "global-only", "tiers+partial"});
    tiers.row({"Young-Daly interval",
               TextTable::num(gcfg.checkpoint_interval_steps) + " steps",
               TextTable::num(hcfg.checkpoint_interval_steps) + " steps"});
    tiers.row({"fatal faults",
               TextTable::num(global_only.faults.gpu_fatal +
                              global_only.faults.host_crash),
               TextTable::num(hier.faults.gpu_fatal +
                              hier.faults.host_crash)});
    tiers.row({"partial restarts", TextTable::num(global_only.partial_restarts),
               TextTable::num(hier.partial_restarts)});
    tiers.row({"tier fallbacks (HostCrash -> global)",
               TextTable::num(global_only.tier_fallbacks),
               TextTable::num(hier.tier_fallbacks)});
    const auto tier_col = [](const TrainRunReport &r, CheckpointTier t) {
        return TextTable::num(
                   r.tier_restore_seconds[static_cast<std::size_t>(t)], 1) +
               " s";
    };
    tiers.row({"restore from HBM peer tier",
               tier_col(global_only, CheckpointTier::HbmPeer),
               tier_col(hier, CheckpointTier::HbmPeer)});
    tiers.row({"restore from host NVMe tier",
               tier_col(global_only, CheckpointTier::HostLocal),
               tier_col(hier, CheckpointTier::HostLocal)});
    tiers.row({"restore from global tier",
               tier_col(global_only, CheckpointTier::Global),
               tier_col(hier, CheckpointTier::Global)});
    tiers.row({"steps lost to rollback",
               TextTable::num(global_only.steps_lost),
               TextTable::num(hier.steps_lost)});
    tiers.row({"goodput",
               TextTable::num(global_only.goodput_tflops_per_gpu, 1) +
                   " TFLOPs/GPU",
               TextTable::num(hier.goodput_tflops_per_gpu, 1) +
                   " TFLOPs/GPU"});
    tiers.print();
    std::puts("The peer mirror is priced as a single p2p transfer over\n"
              "the real topology, so checkpoint boundaries cost ~0.1 s\n"
              "instead of seconds; rollback after a fault loses steps\n"
              "since the last mirror, not the last filesystem write. The\n"
              "audit tier asserts every restore reads a tier whose copies\n"
              "actually survived the fault's blast radius.");
    return 0;
}
