#ifndef LLM4D_TOOLS_LINT_LAYER_DAG_H_
#define LLM4D_TOOLS_LINT_LAYER_DAG_H_

/**
 * @file
 * The declared layer DAG of `src/llm4d/`: which module may include
 * which. This table is the single source of truth the `layer-violation`
 * lint rule enforces; DESIGN.md §"Layer DAG" mirrors it for humans.
 *
 * Rules of the table:
 *  - `deps` lists the *direct* modules a module's sources may include
 *    (space-separated); intra-module includes are always allowed.
 *  - `layer` is the module's height in the DAG; every dep must sit on a
 *    strictly lower layer, which is what makes cycles unrepresentable
 *    (asserted by the lint self-tests).
 *  - A module absent from this table may include nothing and be
 *    included by nothing: adding a directory under src/llm4d/ means
 *    adding a row here, deliberately.
 *
 * Keeping the table tight — deps are the edges that exist today, not
 * the edges that would be harmless — means an accidental new
 * cross-layer dependency fails the lint and forces a conscious edit of
 * this file (and of the DESIGN.md mirror) in the same change.
 */

namespace llm4d::lint {

/** One row of the declared layer DAG. */
struct LayerRow
{
    const char *module; ///< directory name under src/llm4d/
    int layer;          ///< DAG height; deps must be strictly lower
    const char *deps;   ///< space-separated allowed include targets
};

/**
 * The DAG, lowest layer first:
 *
 *   0: simcore
 *   1: tensor  hw  parallel
 *   2: net  model  debug
 *   3: cp  pp  fault
 *   4: data  fsdp
 *   5: sim
 *   6: plan
 */
inline constexpr LayerRow kLayerDag[] = {
    {"simcore", 0, ""},
    {"tensor", 1, "simcore"},
    {"hw", 1, "simcore"},
    {"parallel", 1, "simcore"},
    {"net", 2, "simcore hw"},
    {"model", 2, "simcore hw"},
    {"debug", 2, "simcore tensor parallel"},
    {"cp", 3, "simcore tensor hw net"},
    {"pp", 3, "simcore model"},
    {"fault", 3, "simcore hw parallel net model"},
    {"data", 4, "simcore tensor cp"},
    {"fsdp", 4, "simcore model net pp"},
    {"sim", 5, "simcore tensor hw parallel net model debug cp pp fsdp fault"},
    {"plan", 6, "simcore tensor hw parallel net model cp pp fsdp fault sim"},
};

} // namespace llm4d::lint

#endif // LLM4D_TOOLS_LINT_LAYER_DAG_H_
