/**
 * @file
 * CLI for the llm4d determinism + architecture lint.
 *
 * Usage:
 *   llm4d_lint [--root DIR]      lint src/ bench/ examples/ tests/ tools/
 *                                under DIR (default: current directory),
 *                                including the whole-tree passes (layer
 *                                DAG, include cycles, RNG stream registry)
 *   llm4d_lint FILE...           lint the named files only (per-file
 *                                rules; the include-cycle pass needs a
 *                                tree root)
 *   llm4d_lint --list-rules      print the rule table
 *   llm4d_lint --format=FMT      text (default), json, or github
 *                                (GitHub Actions ::error annotations)
 *   llm4d_lint --summary         append a per-rule violation-count table
 *
 * Text violations print as "file:line: rule: message"; exit status is 1
 * when any violation is found, 0 on a clean tree.
 */

#include "lint_core.h"

#include <cstdio>
#include <string>
#include <vector>

namespace {

/** Escape a string for a JSON value. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** GitHub annotation properties use URL-style escapes for , and %. */
std::string
githubEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '%')
            out += "%25";
        else if (c == '\n')
            out += "%0A";
        else
            out += c;
    }
    return out;
}

void
printViolations(const std::vector<llm4d::lint::Violation> &violations,
                const std::string &format)
{
    if (format == "json") {
        std::printf("[\n");
        for (std::size_t i = 0; i < violations.size(); ++i) {
            const auto &v = violations[i];
            std::printf("  {\"file\": \"%s\", \"line\": %d, "
                        "\"rule\": \"%s\", \"message\": \"%s\"}%s\n",
                        jsonEscape(v.file).c_str(), v.line,
                        jsonEscape(v.rule).c_str(),
                        jsonEscape(v.message).c_str(),
                        i + 1 < violations.size() ? "," : "");
        }
        std::printf("]\n");
        return;
    }
    if (format == "github") {
        for (const auto &v : violations) {
            std::printf("::error file=%s,line=%d,title=llm4d_lint "
                        "%s::%s\n",
                        githubEscape(v.file).c_str(), v.line,
                        v.rule.c_str(), githubEscape(v.message).c_str());
        }
        return;
    }
    for (const auto &v : violations)
        std::printf("%s\n", llm4d::lint::toString(v).c_str());
}

/** Per-rule violation counts, every rule listed even when clean. */
void
printSummary(const std::vector<llm4d::lint::Violation> &violations)
{
    std::printf("\n%-22s %s\n", "rule", "violations");
    std::size_t accounted = 0;
    for (const auto &rule : llm4d::lint::ruleTable()) {
        std::size_t count = 0;
        for (const auto &v : violations)
            count += v.rule == rule.name ? 1 : 0;
        accounted += count;
        std::printf("%-22s %zu\n", rule.name.c_str(), count);
    }
    // "io" (unreadable file) findings fall outside the rule table.
    if (accounted < violations.size())
        std::printf("%-22s %zu\n", "io",
                    violations.size() - accounted);
    std::printf("%-22s %zu\n", "total", violations.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string format = "text";
    bool summary = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &rule : llm4d::lint::ruleTable())
                std::printf("%-22s %s\n", rule.name.c_str(),
                            rule.summary.c_str());
            return 0;
        }
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "llm4d_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(std::string("--format=").size());
        } else if (arg == "--format") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "llm4d_lint: --format needs a value\n");
                return 2;
            }
            format = argv[++i];
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: llm4d_lint [--root DIR] [--list-rules] "
                        "[--format=text|json|github] [--summary] "
                        "[FILE...]\n");
            return 0;
        } else {
            files.push_back(arg);
        }
    }
    if (format != "text" && format != "json" && format != "github") {
        std::fprintf(stderr,
                     "llm4d_lint: unknown --format '%s' (want text, "
                     "json, or github)\n",
                     format.c_str());
        return 2;
    }

    std::vector<llm4d::lint::Violation> violations;
    if (files.empty()) {
        violations = llm4d::lint::lintTree(root);
    } else {
        for (const std::string &file : files) {
            auto v = llm4d::lint::lintFile(file);
            violations.insert(violations.end(), v.begin(), v.end());
        }
    }

    printViolations(violations, format);
    if (summary)
        printSummary(violations);
    if (!violations.empty()) {
        std::fprintf(stderr, "llm4d_lint: %zu violation(s)\n",
                     violations.size());
        return 1;
    }
    return 0;
}
