/**
 * @file
 * CLI for the llm4d determinism lint.
 *
 * Usage:
 *   llm4d_lint [--root DIR]      lint src/ bench/ examples/ tests/ under DIR
 *                                (default: current directory)
 *   llm4d_lint FILE...           lint the named files only
 *   llm4d_lint --list-rules      print the rule table
 *
 * Violations print as "file:line: rule: message"; exit status is 1 when
 * any violation is found, 0 on a clean tree.
 */

#include "lint_core.h"

#include <cstdio>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &rule : llm4d::lint::ruleTable())
                std::printf("%-18s %s\n", rule.name.c_str(),
                            rule.summary.c_str());
            return 0;
        }
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "llm4d_lint: --root needs a value\n");
                return 2;
            }
            root = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: llm4d_lint [--root DIR] [--list-rules] [FILE...]\n");
            return 0;
        } else {
            files.push_back(arg);
        }
    }

    std::vector<llm4d::lint::Violation> violations;
    if (files.empty()) {
        violations = llm4d::lint::lintTree(root);
    } else {
        for (const std::string &file : files) {
            auto v = llm4d::lint::lintFile(file);
            violations.insert(violations.end(), v.begin(), v.end());
        }
    }

    for (const auto &violation : violations)
        std::printf("%s\n", llm4d::lint::toString(violation).c_str());
    if (!violations.empty()) {
        std::fprintf(stderr, "llm4d_lint: %zu violation(s)\n",
                     violations.size());
        return 1;
    }
    return 0;
}
