#ifndef LLM4D_TOOLS_LINT_LINT_CORE_H_
#define LLM4D_TOOLS_LINT_LINT_CORE_H_

/**
 * @file
 * Determinism + architecture lint for the llm4d tree: a standalone
 * analyzer (no libclang dependency) that rejects patterns known to
 * break the simulator's bit-reproducibility, its conservative
 * accounting, or its layering.
 *
 * Two kinds of passes:
 *
 * Per-line token rules (run on any file, even in isolation):
 *
 *  - nondet-rng          std::random_device / rand() / srand(): RNG that
 *                        is not a pure function of the configured seed.
 *  - wall-clock          std::chrono::*_clock::now, time(nullptr),
 *                        gettimeofday, clock(): simulation results must
 *                        never depend on host wall-clock.
 *  - unordered-iter      range-for over std::unordered_map/set in files
 *                        that schedule engine events or accumulate stats
 *                        (detected by a direct include of
 *                        simcore/engine.h or simcore/stats.h): hash
 *                        iteration order is implementation-defined, so
 *                        event order or float accumulation order leaks
 *                        nondeterminism.
 *  - time-eq             raw == / != on simulated-time expressions
 *                        (now(), .when, *_at, ...): same-instant events
 *                        are ordered by the engine's FIFO tie-break, not
 *                        by timestamp equality; exact comparisons are
 *                        almost always a latent bug.
 *  - missing-nodiscard   try*-returning planner/sim APIs declared
 *                        without [[nodiscard]]: silently dropping a
 *                        tryBestPlan result hides infeasibility.
 *  - raw-rng-stream      a hex literal used to construct or seed an
 *                        Rng outside simcore/rng_streams.h: stream ids
 *                        must live in the registry so disjointness
 *                        across models is auditable (CRN studies assume
 *                        independent models draw from disjoint streams).
 *  - rng-stream-collision  two constants in simcore/rng_streams.h
 *                        sharing one value: colliding streams silently
 *                        correlate independent models under a common
 *                        seed.
 *
 * Whole-tree architecture passes (need the full file set; run by
 * lintTree, and — for layer-violation — wherever the path reveals the
 * module):
 *
 *  - layer-violation     an #include "llm4d/..." edge that is not in
 *                        the declared layer DAG (tools/lint/layer_dag.h,
 *                        mirrored in DESIGN.md): upward or cross-layer
 *                        includes break the deterministic seams the
 *                        layering exists to protect.
 *  - include-cycle       a cycle in the llm4d include graph, reported
 *                        with the full path; cyclic headers make
 *                        initialization order and seam boundaries
 *                        accidental.
 *
 * Suppression: append `// lint:allow(<rule>[,<rule>...])` to the
 * violating line. Comments and string literals are stripped before any
 * rule runs, so prose and log messages can mention the patterns freely.
 *
 * This is a deliberate heuristic scanner: it sees tokens, lines, and
 * the include graph, not types. The trade — a few allow-comments on
 * legitimate sites — buys a gate that builds in milliseconds, runs
 * everywhere the repo compiles, and cannot rot with a compiler upgrade.
 */

#include <string>
#include <vector>

namespace llm4d::lint {

/** One lint finding. */
struct Violation
{
    std::string file;
    int line = 0; ///< 1-based
    std::string rule;
    std::string message;
};

/** One row of the rule table. */
struct RuleInfo
{
    std::string name;
    std::string summary;
};

/** The rule table, in reporting order. */
std::vector<RuleInfo> ruleTable();

/** One module of the declared layer DAG (tools/lint/layer_dag.h). */
struct LayerInfo
{
    std::string module;            ///< directory name under src/llm4d/
    int layer = 0;                 ///< DAG height; deps sit strictly lower
    std::vector<std::string> deps; ///< allowed direct include targets
};

/** The declared layer DAG, lowest layer first. */
std::vector<LayerInfo> layerTable();

/** Lint @p content as if it were the file @p path (path drives the
 *  reporting prefix and path-scoped rules, including which module the
 *  layering pass assigns the file to). */
std::vector<Violation> lintContent(const std::string &path,
                                   const std::string &content);

/** Lint one on-disk file. An unreadable path yields a single "io"
 *  violation so callers still exit non-zero. */
std::vector<Violation> lintFile(const std::string &path);

/**
 * Walk src/, bench/, examples/, tests/, and tools/ under @p root and
 * lint every C++ file (.cc/.h/.cpp/.hpp) in sorted order, then run the
 * whole-tree passes (layer DAG, include cycles, RNG stream registry)
 * over the collected file set. Violations report paths relative to
 * @p root. Build trees (any directory named `build*`) are pruned so a
 * configured checkout never lints generated or vendored sources, and
 * the lint self-test fixtures (tests/lint/fixtures/ relative to
 * @p root) are skipped because they are deliberately bad.
 */
std::vector<Violation> lintTree(const std::string &root);

/** Render as "file:line: rule: message". */
std::string toString(const Violation &violation);

} // namespace llm4d::lint

#endif // LLM4D_TOOLS_LINT_LINT_CORE_H_
