#ifndef LLM4D_TOOLS_LINT_LINT_CORE_H_
#define LLM4D_TOOLS_LINT_LINT_CORE_H_

/**
 * @file
 * Determinism lint for the llm4d tree: a standalone token-level scanner
 * (no libclang dependency) that rejects patterns known to break the
 * simulator's bit-reproducibility or its conservative accounting.
 *
 * Rules (data-driven; `llm4d_lint --list-rules` prints this table):
 *
 *  - nondet-rng          std::random_device / rand() / srand(): RNG that
 *                        is not a pure function of the configured seed.
 *  - wall-clock          std::chrono::*_clock::now, time(nullptr),
 *                        gettimeofday, clock(): simulation results must
 *                        never depend on host wall-clock.
 *  - unordered-iter      range-for over std::unordered_map/set in files
 *                        that schedule engine events or accumulate stats
 *                        (detected by a direct include of
 *                        simcore/engine.h or simcore/stats.h): hash
 *                        iteration order is implementation-defined, so
 *                        event order or float accumulation order leaks
 *                        nondeterminism.
 *  - time-eq             raw == / != on simulated-time expressions
 *                        (now(), .when, *_at, ...): same-instant events
 *                        are ordered by the engine's FIFO tie-break, not
 *                        by timestamp equality; exact comparisons are
 *                        almost always a latent bug.
 *  - missing-nodiscard   try*-returning planner/sim APIs declared
 *                        without [[nodiscard]]: silently dropping a
 *                        tryBestPlan result hides infeasibility.
 *
 * Suppression: append `// lint:allow(<rule>[,<rule>...])` to the
 * violating line. Comments and string literals are stripped before any
 * rule runs, so prose and log messages can mention the patterns freely.
 *
 * This is a deliberate heuristic scanner: it sees tokens and single
 * lines, not types. The trade — a few allow-comments on legitimate
 * sites — buys a gate that builds in milliseconds, runs everywhere the
 * repo compiles, and cannot rot with a compiler upgrade.
 */

#include <string>
#include <vector>

namespace llm4d::lint {

/** One lint finding. */
struct Violation
{
    std::string file;
    int line = 0; ///< 1-based
    std::string rule;
    std::string message;
};

/** One row of the rule table. */
struct RuleInfo
{
    std::string name;
    std::string summary;
};

/** The rule table, in reporting order. */
std::vector<RuleInfo> ruleTable();

/** Lint @p content as if it were the file @p path (path drives the
 *  reporting prefix and path-scoped rules). */
std::vector<Violation> lintContent(const std::string &path,
                                   const std::string &content);

/** Lint one on-disk file. An unreadable path yields a single "io"
 *  violation so callers still exit non-zero. */
std::vector<Violation> lintFile(const std::string &path);

/**
 * Walk src/, bench/, examples/, and tests/ under @p root and lint every
 * C++ file (.cc/.h/.cpp/.hpp) in sorted order. The lint self-test
 * fixtures (tests/lint/fixtures/) are deliberately bad and are skipped.
 */
std::vector<Violation> lintTree(const std::string &root);

/** Render as "file:line: rule: message". */
std::string toString(const Violation &violation);

} // namespace llm4d::lint

#endif // LLM4D_TOOLS_LINT_LINT_CORE_H_
