#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace llm4d::lint {

namespace {

/** A file after preprocessing: raw lines for suppression comments,
 *  code lines with comments and string/char literals blanked out. */
struct FileText
{
    std::string path;
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<std::vector<std::string>> allows; ///< per-line rule names
};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(content);
    while (std::getline(in, line))
        lines.push_back(line);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

/**
 * Blank comments and string/char literal contents (preserving line
 * structure and column positions), so rules never fire on prose or log
 * messages. A single pass with a five-state machine; escape sequences
 * inside literals are honoured.
 */
std::vector<std::string>
stripCommentsAndStrings(const std::vector<std::string> &raw)
{
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    std::vector<std::string> out;
    out.reserve(raw.size());
    for (const std::string &line : raw) {
        std::string code(line.size(), ' ');
        if (state == State::LineComment)
            state = State::Code;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    state = State::LineComment;
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    ++i;
                } else if (c == '"') {
                    code[i] = '"';
                    state = State::String;
                } else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Char;
                } else {
                    code[i] = c;
                }
                break;
              case State::LineComment:
                break; // rest of the line is comment
              case State::BlockComment:
                if (c == '*' && next == '/') {
                    state = State::Code;
                    ++i;
                }
                break;
              case State::String:
                if (c == '\\') {
                    ++i;
                } else if (c == '"') {
                    code[i] = '"';
                    state = State::Code;
                }
                break;
              case State::Char:
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Code;
                }
                break;
            }
        }
        if (state == State::LineComment)
            state = State::Code;
        out.push_back(std::move(code));
    }
    return out;
}

/** Parse every `lint:allow(a,b)` marker on one raw line. */
std::vector<std::string>
parseAllows(const std::string &raw_line)
{
    static const std::regex kAllow(R"(lint:allow\(([A-Za-z0-9_\-, ]+)\))");
    std::vector<std::string> allows;
    auto begin =
        std::sregex_iterator(raw_line.begin(), raw_line.end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::string inner = (*it)[1].str();
        std::string name;
        std::istringstream parts(inner);
        while (std::getline(parts, name, ',')) {
            const auto first = name.find_first_not_of(" \t");
            const auto last = name.find_last_not_of(" \t");
            if (first != std::string::npos)
                allows.push_back(name.substr(first, last - first + 1));
        }
    }
    return allows;
}

FileText
preprocess(const std::string &path, const std::string &content)
{
    FileText text;
    text.path = path;
    text.raw = splitLines(content);
    text.code = stripCommentsAndStrings(text.raw);
    text.allows.reserve(text.raw.size());
    for (const std::string &line : text.raw)
        text.allows.push_back(parseAllows(line));
    return text;
}

// ---------------------------------------------------------------------------
// Pattern rules: one regex per rule, applied per code line. Extending the
// lint with a new token-level ban is one table row here.
// ---------------------------------------------------------------------------

struct PatternRule
{
    const char *name;
    const char *summary;
    const char *pattern;
    const char *message;
};

const PatternRule kPatternRules[] = {
    {"nondet-rng",
     "std::random_device / rand() / srand(): RNG outside the seeded "
     "llm4d::Rng",
     R"(random_device|(^|[^\w])(rand|srand)\s*\()",
     "nondeterministic RNG source; derive randomness from the seeded "
     "llm4d::Rng (simcore/rng.h) so runs stay bit-reproducible"},
    {"wall-clock",
     "host wall-clock reads (chrono ::now, time(nullptr), clock(), ...)",
     R"((system_clock|steady_clock|high_resolution_clock)\s*::\s*now)"
     R"(|\b(gettimeofday|clock_gettime|timespec_get)\b)"
     R"(|(^|[^\w.:>])time\s*\(\s*(nullptr|NULL|0)\s*\))"
     R"(|(^|[^\w.:>~])clock\s*\(\s*\))",
     "host wall-clock read; simulated results must depend only on "
     "Engine::now() and the configured seed"},
};

void
checkPatternRule(const PatternRule &rule, const FileText &text,
                 std::vector<Violation> &out)
{
    const std::regex re(rule.pattern);
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        if (std::regex_search(text.code[i], re)) {
            out.push_back(Violation{text.path, static_cast<int>(i + 1),
                                    rule.name, rule.message});
        }
    }
}

// ---------------------------------------------------------------------------
// unordered-iter: range-for over std::unordered_map/set in files that
// schedule engine events or accumulate stats (direct include of
// simcore/engine.h or simcore/stats.h).
// ---------------------------------------------------------------------------

bool
fileSchedulesEventsOrAccumulatesStats(const FileText &text)
{
    for (const std::string &line : text.raw) {
        if (line.find("#include \"llm4d/simcore/engine.h\"") !=
                std::string::npos ||
            line.find("#include \"llm4d/simcore/stats.h\"") !=
                std::string::npos)
            return true;
    }
    return false;
}

/** Names declared (or returned by accessors) with an unordered type. */
std::set<std::string>
unorderedNames(const FileText &text)
{
    static const std::regex kDecl(
        R"(unordered_(map|set)\s*<[^;{}]*?>\s*&?\s*(\w+)\s*[;={(,)])");
    std::set<std::string> names;
    for (const std::string &line : text.code) {
        auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            names.insert((*it)[2].str());
    }
    return names;
}

/**
 * Find the range expression of a single-line range-for starting at the
 * '(' at @p open in @p line; empty when the loop is not a range-for (or
 * spans lines — a known limit of a line-level scanner).
 */
std::string
rangeForExpr(const std::string &line, std::size_t open)
{
    int depth = 0;
    std::size_t colon = std::string::npos;
    for (std::size_t i = open; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '(')
            ++depth;
        else if (c == ')') {
            --depth;
            if (depth == 0) {
                if (colon == std::string::npos)
                    return "";
                return line.substr(colon + 1, i - colon - 1);
            }
        } else if (c == ':' && depth == 1 && colon == std::string::npos) {
            const char prev = i > 0 ? line[i - 1] : '\0';
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            if (prev != ':' && next != ':')
                colon = i;
        }
    }
    return "";
}

void
checkUnorderedIter(const FileText &text, std::vector<Violation> &out)
{
    if (!fileSchedulesEventsOrAccumulatesStats(text))
        return;
    const std::set<std::string> names = unorderedNames(text);
    static const std::regex kFor(R"(\bfor\s*\()");
    static const std::regex kLastIdent(R"(([A-Za-z_]\w*)\s*(\(\s*\))?\s*$)");
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string &line = text.code[i];
        auto begin = std::sregex_iterator(line.begin(), line.end(), kFor);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::size_t open =
                static_cast<std::size_t>(it->position()) +
                it->str().size() - 1;
            const std::string expr = rangeForExpr(line, open);
            if (expr.empty())
                continue;
            bool unordered = expr.find("unordered_") != std::string::npos;
            std::smatch m;
            if (!unordered && std::regex_search(expr, m, kLastIdent))
                unordered = names.count(m[1].str()) > 0;
            if (unordered) {
                out.push_back(Violation{
                    text.path, static_cast<int>(i + 1), "unordered-iter",
                    "iteration over an unordered container in an "
                    "event-scheduling/stats file: hash order is "
                    "implementation-defined and leaks nondeterminism; "
                    "use std::map/std::set or an index-ordered loop"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// time-eq: raw == / != whose operand window mentions a simulated-time
// expression (now(), now_, .when, *_at, *_deadline, *_ns).
// ---------------------------------------------------------------------------

bool
looksLikeTimeExpr(const std::string &window)
{
    static const std::regex kTime(
        R"(\b(when|until|deadline)\b|\bnow\s*\(\s*\)|\bnow_)"
        R"(|\w+_at\b|\w+_deadline\b|\w+_ns\b)");
    return std::regex_search(window, kTime);
}

void
checkTimeEq(const FileText &text, std::vector<Violation> &out)
{
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string &line = text.code[i];
        bool flagged = false;
        for (std::size_t pos = 0; pos + 1 < line.size() && !flagged;
             ++pos) {
            const char a = line[pos];
            const char b = line[pos + 1];
            if (!((a == '=' || a == '!') && b == '='))
                continue;
            // Skip <=, >=, ==='s tail, != inside !==, and = itself.
            const char prev = pos > 0 ? line[pos - 1] : '\0';
            const char after = pos + 2 < line.size() ? line[pos + 2] : '\0';
            if (prev == '<' || prev == '>' || prev == '=' || prev == '!' ||
                after == '=')
                continue;
            // Iterator-vs-end() comparisons are fine even when the
            // surrounding expression mentions time-named members.
            static const std::regex kEndCall(
                R"(^\s*[\w.>-]*\b(c?r?end)\s*\()");
            if (std::regex_search(line.substr(pos + 2), kEndCall))
                continue;
            const std::size_t lo = pos > 40 ? pos - 40 : 0;
            const std::size_t hi = std::min(line.size(), pos + 42);
            if (looksLikeTimeExpr(line.substr(lo, hi - lo))) {
                out.push_back(Violation{
                    text.path, static_cast<int>(i + 1), "time-eq",
                    "exact ==/!= on a simulated-time expression: "
                    "same-instant events are ordered by the engine's "
                    "FIFO tie-break, not timestamp equality; compare "
                    "with </<= or annotate a deliberate tie-break with "
                    "lint:allow(time-eq)"});
                flagged = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// missing-nodiscard: header declarations of try*-returning APIs must be
// [[nodiscard]] — dropping a tryBestPlan() result hides infeasibility.
// ---------------------------------------------------------------------------

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".h") || endsWith(path, ".hpp");
}

void
checkMissingNodiscard(const FileText &text, std::vector<Violation> &out)
{
    if (!isHeaderPath(text.path))
        return;
    static const std::regex kTry(R"(\b(try[A-Z]\w*)\s*\()");
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string &line = text.code[i];
        auto begin = std::sregex_iterator(line.begin(), line.end(), kTry);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            // Declaration context: the current line's prefix plus up to
            // three preceding code lines.
            std::string context;
            for (std::size_t back = i >= 3 ? i - 3 : 0; back < i; ++back)
                context += text.code[back] + "\n";
            context += line.substr(0, static_cast<std::size_t>(
                                          it->position()));
            // Call sites: preceded by an operator/keyword that demands a
            // value, not a declaration's return type.
            std::string trimmed = context;
            while (!trimmed.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       trimmed.back())))
                trimmed.pop_back();
            const char last = trimmed.empty() ? '\0' : trimmed.back();
            if (last == '=' || last == '(' || last == ',' || last == '!' ||
                last == '{' || last == '?' || last == '.' || last == '+' ||
                last == '-' || last == '*' || last == '/' ||
                endsWith(trimmed, "&&") || endsWith(trimmed, "||") ||
                endsWith(trimmed, "return") || endsWith(trimmed, "->"))
                continue;
            if (context.find("nodiscard") != std::string::npos)
                continue;
            if (line.find('#') != std::string::npos)
                continue; // preprocessor line
            out.push_back(Violation{
                text.path, static_cast<int>(i + 1), "missing-nodiscard",
                "try*-returning API '" + (*it)[1].str() +
                    "' must be declared [[nodiscard]]: a dropped result "
                    "silently hides infeasibility"});
        }
    }
}

void
applySuppressions(const FileText &text, std::vector<Violation> &violations)
{
    violations.erase(
        std::remove_if(
            violations.begin(), violations.end(),
            [&](const Violation &v) {
                if (v.line < 1 ||
                    v.line > static_cast<int>(text.allows.size()))
                    return false;
                const auto &allows =
                    text.allows[static_cast<std::size_t>(v.line - 1)];
                return std::find(allows.begin(), allows.end(), v.rule) !=
                           allows.end() ||
                       std::find(allows.begin(), allows.end(), "all") !=
                           allows.end();
            }),
        violations.end());
}

} // namespace

std::vector<RuleInfo>
ruleTable()
{
    std::vector<RuleInfo> rules;
    for (const PatternRule &rule : kPatternRules)
        rules.push_back(RuleInfo{rule.name, rule.summary});
    rules.push_back(RuleInfo{
        "unordered-iter",
        "range-for over std::unordered_map/set in event-scheduling or "
        "stats-accumulating files"});
    rules.push_back(RuleInfo{
        "time-eq",
        "raw ==/!= comparisons on simulated-time expressions"});
    rules.push_back(RuleInfo{
        "missing-nodiscard",
        "try*-returning planner/sim APIs declared without [[nodiscard]]"});
    return rules;
}

std::vector<Violation>
lintContent(const std::string &path, const std::string &content)
{
    const FileText text = preprocess(path, content);
    std::vector<Violation> violations;
    for (const PatternRule &rule : kPatternRules)
        checkPatternRule(rule, text, violations);
    checkUnorderedIter(text, violations);
    checkTimeEq(text, violations);
    checkMissingNodiscard(text, violations);
    applySuppressions(text, violations);
    std::sort(violations.begin(), violations.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return violations;
}

std::vector<Violation>
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {Violation{path, 0, "io", "cannot read file"}};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintContent(path, buffer.str());
}

std::vector<Violation>
lintTree(const std::string &root)
{
    namespace fs = std::filesystem;
    static const char *kSubdirs[] = {"src", "bench", "examples", "tests"};
    std::vector<std::string> files;
    for (const char *sub : kSubdirs) {
        const fs::path dir = fs::path(root) / sub;
        if (!fs::is_directory(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string path = entry.path().generic_string();
            if (path.find("tests/lint/fixtures") != std::string::npos)
                continue; // deliberately-bad lint self-test inputs
            if (endsWith(path, ".cc") || endsWith(path, ".h") ||
                endsWith(path, ".cpp") || endsWith(path, ".hpp"))
                files.push_back(path);
        }
    }
    std::sort(files.begin(), files.end());
    std::vector<Violation> violations;
    for (const std::string &file : files) {
        std::vector<Violation> v = lintFile(file);
        violations.insert(violations.end(),
                          std::make_move_iterator(v.begin()),
                          std::make_move_iterator(v.end()));
    }
    return violations;
}

std::string
toString(const Violation &violation)
{
    std::ostringstream out;
    out << violation.file << ":" << violation.line << ": "
        << violation.rule << ": " << violation.message;
    return out.str();
}

} // namespace llm4d::lint
