#include "lint_core.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "layer_dag.h"

namespace llm4d::lint {

namespace {

/** A file after preprocessing: raw lines for suppression comments,
 *  code lines with comments and string/char literals blanked out. */
struct FileText
{
    std::string path;
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::vector<std::vector<std::string>> allows; ///< per-line rule names
};

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(content);
    while (std::getline(in, line))
        lines.push_back(line);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

/**
 * Blank comments and string/char literal contents (preserving line
 * structure and column positions), so rules never fire on prose or log
 * messages. A single pass with a five-state machine; escape sequences
 * inside literals are honoured.
 */
std::vector<std::string>
stripCommentsAndStrings(const std::vector<std::string> &raw)
{
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    std::vector<std::string> out;
    out.reserve(raw.size());
    for (const std::string &line : raw) {
        std::string code(line.size(), ' ');
        if (state == State::LineComment)
            state = State::Code;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            switch (state) {
              case State::Code:
                if (c == '/' && next == '/') {
                    state = State::LineComment;
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    ++i;
                } else if (c == '"') {
                    code[i] = '"';
                    state = State::String;
                } else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Char;
                } else {
                    code[i] = c;
                }
                break;
              case State::LineComment:
                break; // rest of the line is comment
              case State::BlockComment:
                if (c == '*' && next == '/') {
                    state = State::Code;
                    ++i;
                }
                break;
              case State::String:
                if (c == '\\') {
                    ++i;
                } else if (c == '"') {
                    code[i] = '"';
                    state = State::Code;
                }
                break;
              case State::Char:
                if (c == '\\') {
                    ++i;
                } else if (c == '\'') {
                    code[i] = '\'';
                    state = State::Code;
                }
                break;
            }
        }
        if (state == State::LineComment)
            state = State::Code;
        out.push_back(std::move(code));
    }
    return out;
}

/** Parse every `lint:allow(a,b)` marker on one raw line. */
std::vector<std::string>
parseAllows(const std::string &raw_line)
{
    static const std::regex kAllow(R"(lint:allow\(([A-Za-z0-9_\-, ]+)\))");
    std::vector<std::string> allows;
    auto begin =
        std::sregex_iterator(raw_line.begin(), raw_line.end(), kAllow);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        std::string inner = (*it)[1].str();
        std::string name;
        std::istringstream parts(inner);
        while (std::getline(parts, name, ',')) {
            const auto first = name.find_first_not_of(" \t");
            const auto last = name.find_last_not_of(" \t");
            if (first != std::string::npos)
                allows.push_back(name.substr(first, last - first + 1));
        }
    }
    return allows;
}

FileText
preprocess(const std::string &path, const std::string &content)
{
    FileText text;
    text.path = path;
    text.raw = splitLines(content);
    text.code = stripCommentsAndStrings(text.raw);
    text.allows.reserve(text.raw.size());
    for (const std::string &line : text.raw)
        text.allows.push_back(parseAllows(line));
    return text;
}

// ---------------------------------------------------------------------------
// Pattern rules: one regex per rule, applied per code line. Extending the
// lint with a new token-level ban is one table row here.
// ---------------------------------------------------------------------------

struct PatternRule
{
    const char *name;
    const char *summary;
    const char *pattern;
    const char *message;
};

const PatternRule kPatternRules[] = {
    {"nondet-rng",
     "std::random_device / rand() / srand(): RNG outside the seeded "
     "llm4d::Rng",
     R"(random_device|(^|[^\w])(rand|srand)\s*\()",
     "nondeterministic RNG source; derive randomness from the seeded "
     "llm4d::Rng (simcore/rng.h) so runs stay bit-reproducible"},
    {"wall-clock",
     "host wall-clock reads (chrono ::now, time(nullptr), clock(), ...)",
     R"((system_clock|steady_clock|high_resolution_clock)\s*::\s*now)"
     R"(|\b(gettimeofday|clock_gettime|timespec_get)\b)"
     R"(|(^|[^\w.:>])time\s*\(\s*(nullptr|NULL|0)\s*\))"
     R"(|(^|[^\w.:>~])clock\s*\(\s*\))",
     "host wall-clock read; simulated results must depend only on "
     "Engine::now() and the configured seed"},
};

void
checkPatternRule(const PatternRule &rule, const FileText &text,
                 std::vector<Violation> &out)
{
    const std::regex re(rule.pattern);
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        if (std::regex_search(text.code[i], re)) {
            out.push_back(Violation{text.path, static_cast<int>(i + 1),
                                    rule.name, rule.message});
        }
    }
}

// ---------------------------------------------------------------------------
// unordered-iter: range-for over std::unordered_map/set in files that
// schedule engine events or accumulate stats (direct include of
// simcore/engine.h or simcore/stats.h), plus hw/perf_variation.* whose
// straggler set feeds deterministic timeline pricing.
// ---------------------------------------------------------------------------

bool
fileSchedulesEventsOrAccumulatesStats(const FileText &text)
{
    // hw/perf_variation is opted in by path: its straggler set is
    // iterated by deterministic consumers (TrainRunSim pricing), so an
    // unordered container there would leak hash order into timelines
    // even though the file includes neither engine.h nor stats.h.
    if (text.path.find("hw/perf_variation.") != std::string::npos)
        return true;
    for (const std::string &line : text.raw) {
        if (line.find("#include \"llm4d/simcore/engine.h\"") !=
                std::string::npos ||
            line.find("#include \"llm4d/simcore/stats.h\"") !=
                std::string::npos)
            return true;
    }
    return false;
}

/** Names declared (or returned by accessors) with an unordered type. */
std::set<std::string>
unorderedNames(const FileText &text)
{
    static const std::regex kDecl(
        R"(unordered_(map|set)\s*<[^;{}]*?>\s*&?\s*(\w+)\s*[;={(,)])");
    std::set<std::string> names;
    for (const std::string &line : text.code) {
        auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            names.insert((*it)[2].str());
    }
    return names;
}

/**
 * Find the range expression of a single-line range-for starting at the
 * '(' at @p open in @p line; empty when the loop is not a range-for (or
 * spans lines — a known limit of a line-level scanner).
 */
std::string
rangeForExpr(const std::string &line, std::size_t open)
{
    int depth = 0;
    std::size_t colon = std::string::npos;
    for (std::size_t i = open; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '(')
            ++depth;
        else if (c == ')') {
            --depth;
            if (depth == 0) {
                if (colon == std::string::npos)
                    return "";
                return line.substr(colon + 1, i - colon - 1);
            }
        } else if (c == ':' && depth == 1 && colon == std::string::npos) {
            const char prev = i > 0 ? line[i - 1] : '\0';
            const char next = i + 1 < line.size() ? line[i + 1] : '\0';
            if (prev != ':' && next != ':')
                colon = i;
        }
    }
    return "";
}

void
checkUnorderedIter(const FileText &text, std::vector<Violation> &out)
{
    if (!fileSchedulesEventsOrAccumulatesStats(text))
        return;
    const std::set<std::string> names = unorderedNames(text);
    static const std::regex kFor(R"(\bfor\s*\()");
    static const std::regex kLastIdent(R"(([A-Za-z_]\w*)\s*(\(\s*\))?\s*$)");
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string &line = text.code[i];
        auto begin = std::sregex_iterator(line.begin(), line.end(), kFor);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::size_t open =
                static_cast<std::size_t>(it->position()) +
                it->str().size() - 1;
            const std::string expr = rangeForExpr(line, open);
            if (expr.empty())
                continue;
            bool unordered = expr.find("unordered_") != std::string::npos;
            std::smatch m;
            if (!unordered && std::regex_search(expr, m, kLastIdent))
                unordered = names.count(m[1].str()) > 0;
            if (unordered) {
                out.push_back(Violation{
                    text.path, static_cast<int>(i + 1), "unordered-iter",
                    "iteration over an unordered container in an "
                    "event-scheduling/stats file: hash order is "
                    "implementation-defined and leaks nondeterminism; "
                    "use std::map/std::set or an index-ordered loop"});
            }
        }
    }
}

// ---------------------------------------------------------------------------
// time-eq: raw == / != whose operand window mentions a simulated-time
// expression (now(), now_, .when, *_at, *_deadline, *_ns).
// ---------------------------------------------------------------------------

bool
looksLikeTimeExpr(const std::string &window)
{
    static const std::regex kTime(
        R"(\b(when|until|deadline)\b|\bnow\s*\(\s*\)|\bnow_)"
        R"(|\w+_at\b|\w+_deadline\b|\w+_ns\b)");
    return std::regex_search(window, kTime);
}

void
checkTimeEq(const FileText &text, std::vector<Violation> &out)
{
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string &line = text.code[i];
        bool flagged = false;
        for (std::size_t pos = 0; pos + 1 < line.size() && !flagged;
             ++pos) {
            const char a = line[pos];
            const char b = line[pos + 1];
            if (!((a == '=' || a == '!') && b == '='))
                continue;
            // Skip <=, >=, ==='s tail, != inside !==, and = itself.
            const char prev = pos > 0 ? line[pos - 1] : '\0';
            const char after = pos + 2 < line.size() ? line[pos + 2] : '\0';
            if (prev == '<' || prev == '>' || prev == '=' || prev == '!' ||
                after == '=')
                continue;
            // Iterator-vs-end() comparisons are fine even when the
            // surrounding expression mentions time-named members.
            static const std::regex kEndCall(
                R"(^\s*[\w.>-]*\b(c?r?end)\s*\()");
            if (std::regex_search(line.substr(pos + 2), kEndCall))
                continue;
            const std::size_t lo = pos > 40 ? pos - 40 : 0;
            const std::size_t hi = std::min(line.size(), pos + 42);
            if (looksLikeTimeExpr(line.substr(lo, hi - lo))) {
                out.push_back(Violation{
                    text.path, static_cast<int>(i + 1), "time-eq",
                    "exact ==/!= on a simulated-time expression: "
                    "same-instant events are ordered by the engine's "
                    "FIFO tie-break, not timestamp equality; compare "
                    "with </<= or annotate a deliberate tie-break with "
                    "lint:allow(time-eq)"});
                flagged = true;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// missing-nodiscard: header declarations of try*-returning APIs must be
// [[nodiscard]] — dropping a tryBestPlan() result hides infeasibility.
// ---------------------------------------------------------------------------

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".h") || endsWith(path, ".hpp");
}

void
checkMissingNodiscard(const FileText &text, std::vector<Violation> &out)
{
    if (!isHeaderPath(text.path))
        return;
    static const std::regex kTry(R"(\b(try[A-Z]\w*)\s*\()");
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string &line = text.code[i];
        auto begin = std::sregex_iterator(line.begin(), line.end(), kTry);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            // Declaration context: the current line's prefix plus up to
            // three preceding code lines.
            std::string context;
            for (std::size_t back = i >= 3 ? i - 3 : 0; back < i; ++back)
                context += text.code[back] + "\n";
            context += line.substr(0, static_cast<std::size_t>(
                                          it->position()));
            // Call sites: preceded by an operator/keyword that demands a
            // value, not a declaration's return type.
            std::string trimmed = context;
            while (!trimmed.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       trimmed.back())))
                trimmed.pop_back();
            const char last = trimmed.empty() ? '\0' : trimmed.back();
            if (last == '=' || last == '(' || last == ',' || last == '!' ||
                last == '{' || last == '?' || last == '.' || last == '+' ||
                last == '-' || last == '*' || last == '/' ||
                endsWith(trimmed, "&&") || endsWith(trimmed, "||") ||
                endsWith(trimmed, "return") || endsWith(trimmed, "->"))
                continue;
            if (context.find("nodiscard") != std::string::npos)
                continue;
            if (line.find('#') != std::string::npos)
                continue; // preprocessor line
            out.push_back(Violation{
                text.path, static_cast<int>(i + 1), "missing-nodiscard",
                "try*-returning API '" + (*it)[1].str() +
                    "' must be declared [[nodiscard]]: a dropped result "
                    "silently hides infeasibility"});
        }
    }
}

// ---------------------------------------------------------------------------
// Include-edge extraction: the input to the architecture passes. Edges
// are read from raw lines (string contents are blanked in code lines)
// but only when the directive survives comment stripping, so a
// commented-out include is not an edge.
// ---------------------------------------------------------------------------

struct IncludeEdge
{
    std::string target; ///< include path, e.g. "llm4d/net/topology.h"
    int line = 0;       ///< 1-based line of the #include
};

std::vector<IncludeEdge>
extractIncludes(const FileText &text)
{
    static const std::regex kInclude(R"(#\s*include\s*"(llm4d/[^"]+)\")");
    std::vector<IncludeEdge> edges;
    for (std::size_t i = 0; i < text.raw.size(); ++i) {
        if (text.code[i].find("include") == std::string::npos)
            continue; // directive commented out (or absent)
        std::smatch m;
        if (std::regex_search(text.raw[i], m, kInclude))
            edges.push_back(
                IncludeEdge{m[1].str(), static_cast<int>(i + 1)});
    }
    return edges;
}

/** Module a source file belongs to: the directory component after
 *  src/llm4d/ (or a bare llm4d/ prefix); empty for files outside the
 *  library tree (tests, tools, bench, examples). */
std::string
moduleOfPath(const std::string &path)
{
    std::size_t at = path.find("src/llm4d/");
    if (at != std::string::npos) {
        at += std::string("src/llm4d/").size();
    } else if (path.rfind("llm4d/", 0) == 0) {
        at = std::string("llm4d/").size();
    } else {
        return "";
    }
    const std::size_t slash = path.find('/', at);
    if (slash == std::string::npos)
        return ""; // a file directly under llm4d/, not inside a module
    return path.substr(at, slash - at);
}

/** Module an include target addresses ("llm4d/<module>/..."). */
std::string
moduleOfInclude(const std::string &target)
{
    return moduleOfPath(target);
}

const LayerRow *
findLayerRow(const std::string &module)
{
    for (const LayerRow &row : kLayerDag) {
        if (module == row.module)
            return &row;
    }
    return nullptr;
}

std::set<std::string>
splitDeps(const char *deps)
{
    std::set<std::string> out;
    std::istringstream in(deps);
    std::string dep;
    while (in >> dep)
        out.insert(dep);
    return out;
}

// ---------------------------------------------------------------------------
// layer-violation: every #include "llm4d/..." edge from a module must be
// declared in the layer DAG (tools/lint/layer_dag.h). Runs per file —
// the DAG is compiled in — so fixtures and single-file invocations get
// the same verdicts as the tree walk.
// ---------------------------------------------------------------------------

void
checkLayering(const FileText &text, std::vector<Violation> &out)
{
    const std::string module = moduleOfPath(text.path);
    if (module.empty())
        return; // consumers (tests/tools/bench/examples) may include anything
    const std::vector<IncludeEdge> edges = extractIncludes(text);
    if (edges.empty())
        return;
    const LayerRow *row = findLayerRow(module);
    if (row == nullptr) {
        out.push_back(Violation{
            text.path, edges.front().line, "layer-violation",
            "module '" + module +
                "' is not in the declared layer DAG; new modules under "
                "src/llm4d/ need a row in tools/lint/layer_dag.h (and "
                "the DESIGN.md mirror) with an explicit layer and "
                "dependency list"});
        return;
    }
    const std::set<std::string> allowed = splitDeps(row->deps);
    for (const IncludeEdge &edge : edges) {
        const std::string target = moduleOfInclude(edge.target);
        if (target.empty() || target == module)
            continue; // intra-module includes are always legal
        const LayerRow *target_row = findLayerRow(target);
        if (target_row == nullptr) {
            out.push_back(Violation{
                text.path, edge.line, "layer-violation",
                "include of \"" + edge.target + "\": module '" + target +
                    "' is not in the declared layer DAG "
                    "(tools/lint/layer_dag.h)"});
            continue;
        }
        if (allowed.count(target) > 0)
            continue;
        const bool upward = target_row->layer >= row->layer;
        out.push_back(Violation{
            text.path, edge.line, "layer-violation",
            std::string(upward ? "upward" : "cross-layer") +
                " include of \"" + edge.target + "\": module '" + module +
                "' (layer " + std::to_string(row->layer) +
                ") may include only {" + row->deps + "} per the declared "
                "layer DAG (tools/lint/layer_dag.h; mirrored in "
                "DESIGN.md)"});
    }
}

// ---------------------------------------------------------------------------
// raw-rng-stream / rng-stream-collision: the RNG stream registry pass.
// Stream ids live in simcore/rng_streams.h, nowhere else, and never
// collide — CRN experiments assume independent models draw from
// disjoint streams.
// ---------------------------------------------------------------------------

bool
isRngRegistryPath(const std::string &path)
{
    return endsWith(path, "simcore/rng_streams.h");
}

/** Hex integer literals (hex *floats* like 0x1.0p-53 are skipped). */
std::vector<std::pair<std::string, std::size_t>>
hexIntLiterals(const std::string &line)
{
    static const std::regex kHex(R"(0[xX][0-9a-fA-F']+)");
    std::vector<std::pair<std::string, std::size_t>> found;
    auto begin = std::sregex_iterator(line.begin(), line.end(), kHex);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::size_t end =
            static_cast<std::size_t>(it->position()) + it->str().size();
        const char next = end < line.size() ? line[end] : '\0';
        if (next == '.' || next == 'p' || next == 'P')
            continue; // hex float
        found.emplace_back(it->str(),
                           static_cast<std::size_t>(it->position()));
    }
    return found;
}

void
checkRawRngStream(const FileText &text, std::vector<Violation> &out)
{
    if (isRngRegistryPath(text.path))
        return; // the registry is where the literals belong
    static const std::regex kRngContext(R"(\bRng\b|[Ss]tream)");
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        const std::string &line = text.code[i];
        if (!std::regex_search(line, kRngContext))
            continue;
        for (const auto &lit : hexIntLiterals(line)) {
            out.push_back(Violation{
                text.path, static_cast<int>(i + 1), "raw-rng-stream",
                "raw hex literal '" + lit.first +
                    "' used to construct or seed an Rng: stream ids "
                    "must be named constants in "
                    "llm4d/simcore/rng_streams.h so disjointness across "
                    "models stays auditable (CRN assumes independent "
                    "models draw from disjoint streams)"});
            break; // one finding per line is enough
        }
    }
}

void
checkRngStreamCollision(const FileText &text, std::vector<Violation> &out)
{
    if (!isRngRegistryPath(text.path))
        return;
    static const std::regex kConst(
        R"(\b(k\w+)\s*=\s*(0[xX][0-9a-fA-F']+|[0-9']+))");
    struct Entry
    {
        std::string name;
        std::string literal;
        int line;
    };
    std::map<std::uint64_t, Entry> by_value;
    for (std::size_t i = 0; i < text.code.size(); ++i) {
        std::smatch m;
        if (!std::regex_search(text.code[i], m, kConst))
            continue;
        std::string literal = m[2].str();
        std::string digits = literal;
        digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                     digits.end());
        const std::uint64_t value =
            std::strtoull(digits.c_str(), nullptr, 0);
        const Entry entry{m[1].str(), literal, static_cast<int>(i + 1)};
        const auto [it, inserted] = by_value.emplace(value, entry);
        if (!inserted) {
            out.push_back(Violation{
                text.path, entry.line, "rng-stream-collision",
                "stream id " + entry.literal + " of '" + entry.name +
                    "' collides with '" + it->second.name + "' (line " +
                    std::to_string(it->second.line) +
                    "): colliding streams silently correlate "
                    "independent models under a common seed"});
        }
    }
}

// ---------------------------------------------------------------------------
// include-cycle: DFS over the llm4d include graph of the collected
// tree; every distinct cycle is reported once, with its full path,
// anchored at the back-edge include.
// ---------------------------------------------------------------------------

/** Strip the leading "src/" for include-style ids in messages. */
std::string
includeStyle(const std::string &rel_path)
{
    if (rel_path.rfind("src/", 0) == 0)
        return rel_path.substr(4);
    return rel_path;
}

void
checkIncludeCycles(const std::vector<FileText> &texts,
                   std::vector<Violation> &out)
{
    std::map<std::string, const FileText *> by_path;
    for (const FileText &text : texts)
        by_path.emplace(text.path, &text);

    struct Edge
    {
        std::string to;
        int line;
    };
    std::map<std::string, std::vector<Edge>> adjacency;
    for (const FileText &text : texts) {
        for (const IncludeEdge &edge : extractIncludes(text)) {
            const std::string target = "src/" + edge.target;
            if (by_path.count(target) > 0)
                adjacency[text.path].push_back(Edge{target, edge.line});
        }
    }

    enum Color
    {
        White = 0,
        Grey,
        Black,
    };
    std::map<std::string, Color> color;
    std::vector<std::string> stack;
    std::set<std::string> reported;

    std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            color[node] = Grey;
            stack.push_back(node);
            for (const Edge &edge : adjacency[node]) {
                const Color c = color[edge.to]; // default-inserts White
                if (c == White) {
                    dfs(edge.to);
                } else if (c == Grey) {
                    // Back edge: the cycle is stack[edge.to .. node].
                    const auto from = std::find(stack.begin(), stack.end(),
                                                edge.to);
                    std::vector<std::string> cycle(from, stack.end());
                    // Canonical key (rotated to the smallest member) so
                    // each cycle is reported exactly once regardless of
                    // which file the DFS entered it through.
                    const auto min_it =
                        std::min_element(cycle.begin(), cycle.end());
                    std::string key;
                    for (auto it = min_it; it != cycle.end(); ++it)
                        key += *it + "|";
                    for (auto it = cycle.begin(); it != min_it; ++it)
                        key += *it + "|";
                    if (!reported.insert(key).second)
                        continue;
                    std::string path_str;
                    for (const std::string &member : cycle)
                        path_str += includeStyle(member) + " -> ";
                    path_str += includeStyle(edge.to);
                    out.push_back(Violation{
                        node, edge.line, "include-cycle",
                        "include cycle: " + path_str +
                            ": cyclic headers make initialization "
                            "order and layer seams accidental; break "
                            "the cycle with a forward declaration or by "
                            "moving the shared piece down a layer"});
                }
            }
            stack.pop_back();
            color[node] = Black;
        };

    for (const FileText &text : texts) {
        if (color[text.path] == White)
            dfs(text.path);
    }
}

// ---------------------------------------------------------------------------
// Driver plumbing: per-file rule set, suppression, tree walk.
// ---------------------------------------------------------------------------

/** All per-file rules (everything except the include-cycle pass, which
 *  needs the whole tree). No suppression, no sorting. */
std::vector<Violation>
lintText(const FileText &text)
{
    std::vector<Violation> violations;
    for (const PatternRule &rule : kPatternRules)
        checkPatternRule(rule, text, violations);
    checkUnorderedIter(text, violations);
    checkTimeEq(text, violations);
    checkMissingNodiscard(text, violations);
    checkLayering(text, violations);
    checkRawRngStream(text, violations);
    checkRngStreamCollision(text, violations);
    return violations;
}

bool
lineAllows(const FileText &text, int line, const std::string &rule)
{
    if (line < 1 || line > static_cast<int>(text.allows.size()))
        return false;
    const auto &allows = text.allows[static_cast<std::size_t>(line - 1)];
    return std::find(allows.begin(), allows.end(), rule) != allows.end() ||
           std::find(allows.begin(), allows.end(), "all") != allows.end();
}

void
applySuppressions(const FileText &text, std::vector<Violation> &violations)
{
    violations.erase(
        std::remove_if(violations.begin(), violations.end(),
                       [&](const Violation &v) {
                           return lineAllows(text, v.line, v.rule);
                       }),
        violations.end());
}

void
sortViolations(std::vector<Violation> &violations)
{
    std::sort(violations.begin(), violations.end(),
              [](const Violation &a, const Violation &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
}

/**
 * Collect the lintable files under @p root, as sorted root-relative
 * paths. Directories named `build*` are pruned (a configured checkout
 * must not lint generated or vendored sources), as is tests/lint/
 * fixtures/ directly under @p root (deliberately-bad self-test
 * inputs; a fixture *tree* passed as its own root is still linted).
 */
std::vector<std::string>
collectFiles(const std::string &root)
{
    namespace fs = std::filesystem;
    static const char *kSubdirs[] = {"src", "bench", "examples", "tests",
                                     "tools"};
    const fs::path root_path(root);
    std::vector<std::string> files;
    for (const char *sub : kSubdirs) {
        const fs::path dir = root_path / sub;
        if (!fs::is_directory(dir))
            continue;
        fs::recursive_directory_iterator it(dir), end;
        for (; it != end; ++it) {
            const std::string rel =
                it->path().lexically_relative(root_path).generic_string();
            if (it->is_directory()) {
                const std::string name =
                    it->path().filename().generic_string();
                if (name.rfind("build", 0) == 0 ||
                    rel == "tests/lint/fixtures")
                    it.disable_recursion_pending();
                continue;
            }
            if (!it->is_regular_file())
                continue;
            if (endsWith(rel, ".cc") || endsWith(rel, ".h") ||
                endsWith(rel, ".cpp") || endsWith(rel, ".hpp"))
                files.push_back(rel);
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

std::vector<RuleInfo>
ruleTable()
{
    std::vector<RuleInfo> rules;
    for (const PatternRule &rule : kPatternRules)
        rules.push_back(RuleInfo{rule.name, rule.summary});
    rules.push_back(RuleInfo{
        "unordered-iter",
        "range-for over std::unordered_map/set in event-scheduling, "
        "stats-accumulating, or hw/perf_variation files"});
    rules.push_back(RuleInfo{
        "time-eq",
        "raw ==/!= comparisons on simulated-time expressions"});
    rules.push_back(RuleInfo{
        "missing-nodiscard",
        "try*-returning planner/sim APIs declared without [[nodiscard]]"});
    rules.push_back(RuleInfo{
        "layer-violation",
        "#include edge not in the declared src/llm4d layer DAG "
        "(tools/lint/layer_dag.h)"});
    rules.push_back(RuleInfo{
        "include-cycle",
        "cycle in the llm4d include graph (reported with the full "
        "path)"});
    rules.push_back(RuleInfo{
        "raw-rng-stream",
        "hex literal constructing/seeding an Rng outside "
        "simcore/rng_streams.h"});
    rules.push_back(RuleInfo{
        "rng-stream-collision",
        "two simcore/rng_streams.h constants sharing one value"});
    return rules;
}

std::vector<LayerInfo>
layerTable()
{
    std::vector<LayerInfo> table;
    for (const LayerRow &row : kLayerDag) {
        LayerInfo info;
        info.module = row.module;
        info.layer = row.layer;
        const std::set<std::string> deps = splitDeps(row.deps);
        info.deps.assign(deps.begin(), deps.end());
        table.push_back(std::move(info));
    }
    return table;
}

std::vector<Violation>
lintContent(const std::string &path, const std::string &content)
{
    const FileText text = preprocess(path, content);
    std::vector<Violation> violations = lintText(text);
    applySuppressions(text, violations);
    sortViolations(violations);
    return violations;
}

std::vector<Violation>
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return {Violation{path, 0, "io", "cannot read file"}};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return lintContent(path, buffer.str());
}

std::vector<Violation>
lintTree(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<Violation> violations;
    std::vector<FileText> texts;
    for (const std::string &rel : collectFiles(root)) {
        std::ifstream in(fs::path(root) / rel, std::ios::binary);
        if (!in) {
            violations.push_back(Violation{rel, 0, "io", "cannot read file"});
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        texts.push_back(preprocess(rel, buffer.str()));
    }
    for (const FileText &text : texts) {
        std::vector<Violation> v = lintText(text);
        violations.insert(violations.end(),
                          std::make_move_iterator(v.begin()),
                          std::make_move_iterator(v.end()));
    }
    checkIncludeCycles(texts, violations);
    std::map<std::string, const FileText *> by_path;
    for (const FileText &text : texts)
        by_path.emplace(text.path, &text);
    violations.erase(
        std::remove_if(violations.begin(), violations.end(),
                       [&](const Violation &v) {
                           const auto it = by_path.find(v.file);
                           return it != by_path.end() &&
                                  lineAllows(*it->second, v.line, v.rule);
                       }),
        violations.end());
    sortViolations(violations);
    return violations;
}

std::string
toString(const Violation &violation)
{
    std::ostringstream out;
    out << violation.file << ":" << violation.line << ": "
        << violation.rule << ": " << violation.message;
    return out.str();
}

} // namespace llm4d::lint
